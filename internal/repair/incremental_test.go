package repair

import (
	"reflect"
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/benchmarks"
)

// TestIncrementalRepairEquivalence pins the incremental engine's contract
// on the corpus: RepairWith(Incremental) and RepairWith(fresh oracle)
// produce identical programs, anomaly sets, and steps — only the number of
// solved SAT queries differs.
func TestIncrementalRepairEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus comparison; skipped with -short")
	}
	for _, b := range benchmarks.All() {
		if b.Name == "TPC-C" {
			continue // the heaviest pipeline; covered by TestIncrementalRepairSavings
		}
		prog, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := RepairWith(prog, anomaly.EC, Options{})
		if err != nil {
			t.Fatalf("%s: fresh: %v", b.Name, err)
		}
		inc, err := RepairWith(prog, anomaly.EC, Options{Incremental: true, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: incremental: %v", b.Name, err)
		}
		if !reflect.DeepEqual(fresh.Initial, inc.Initial) {
			t.Errorf("%s: initial pairs diverge", b.Name)
		}
		if !reflect.DeepEqual(fresh.Remaining, inc.Remaining) {
			t.Errorf("%s: remaining pairs diverge", b.Name)
		}
		if !reflect.DeepEqual(fresh.Steps, inc.Steps) {
			t.Errorf("%s: repair steps diverge:\nfresh %v\ninc   %v", b.Name, fresh.Steps, inc.Steps)
		}
		if got, want := ast.Format(inc.Program), ast.Format(fresh.Program); got != want {
			t.Errorf("%s: repaired programs diverge", b.Name)
		}
	}
}

// TestIncrementalRepairSavings enforces the engine's headline: every
// benchmark's repair must solve at least 30% fewer SAT queries than the
// fresh oracle would (the fresh oracle solves everything it issues, so the
// floor is a cache-hit-rate bound).
func TestIncrementalRepairSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus measurement; skipped with -short")
	}
	for _, b := range benchmarks.All() {
		prog, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		res, err := RepairWith(prog, anomaly.EC, Options{Incremental: true, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		st := res.Stats
		if st.Solved+st.Replayed > st.Queries {
			t.Errorf("%s: solver ran %d+%d times for %d issued queries",
				b.Name, st.Solved, st.Replayed, st.Queries)
		}
		if rate := st.CacheHitRate(); rate < 0.30 {
			t.Errorf("%s: cache hit rate %.0f%% below the 30%% floor (%d issued, %d solved, %d replayed)",
				b.Name, 100*rate, st.Queries, st.Solved, st.Replayed)
		}
	}
}
