package repair

import (
	"os"
	"runtime"
	"strconv"
)

// defaultParallelismCap bounds the detection workers an unset
// Options.Parallelism selects. Detection's parallel efficiency flattens
// past a handful of workers on typical benchmark programs (the wavefront
// couples witness tasks through the found bits, and the session cache
// serializes identical queries), while callers like the experiment grid
// fan whole repairs out and want the remaining cores for that outer
// level — so the default claims at most four.
const defaultParallelismCap = 4

// DefaultParallelism is the detection worker count an unset (zero)
// Options.Parallelism resolves to: min(GOMAXPROCS, 4). The
// ATROPOS_TEST_PARALLELISM environment variable, when set to a positive
// integer, overrides it — the CI race job uses it to drive the parallel
// detection paths at a fixed width regardless of the runner's core count.
func DefaultParallelism() int {
	if v := os.Getenv("ATROPOS_TEST_PARALLELISM"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	if p := runtime.GOMAXPROCS(0); p < defaultParallelismCap {
		return p
	}
	return defaultParallelismCap
}

// ResolveParallelism maps an Options.Parallelism value to a concrete
// worker count: zero (unset) selects DefaultParallelism, anything else is
// taken as given (1 = sequential).
func ResolveParallelism(n int) int {
	if n == 0 {
		return DefaultParallelism()
	}
	return n
}
