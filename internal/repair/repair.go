// Package repair implements the paper's repair procedure (§5, Fig. 10):
// given a program and a consistency model, it detects anomalous access
// pairs with the oracle, preprocesses the program (splitting commands so
// each participates in at most one pair), attempts to eliminate each pair
// by merging (after redirecting through a freshly introduced value
// correspondence when the commands live on different schemas) or by
// translating read-modify-write updates into logging-table inserts, and
// finally post-processes (dead-code elimination, opportunistic merging,
// schema garbage collection).
package repair

import (
	"context"
	"fmt"
	"maps"
	"slices"
	"strings"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/refactor"
	"atropos/internal/replay"
	"atropos/internal/sat"
)

// Result is the outcome of a repair run.
type Result struct {
	// Program is the repaired program.
	Program *ast.Program
	// Corrs are the value correspondences introduced, in application order.
	Corrs []refactor.ValueCorr
	// Initial and Remaining are the anomalous access pairs before and
	// after repair (under the same consistency model).
	Initial   []anomaly.AccessPair
	Remaining []anomaly.AccessPair
	// Steps is a human-readable log of the refactorings applied.
	Steps []string
	// SerializableTxns are the transactions still involved in at least one
	// anomaly: the AT-SC deployment runs exactly these under SC (§7.2).
	SerializableTxns []string
	// Stats aggregates the oracle's SAT-query work across the pipeline's
	// three detection passes. With the incremental session, Solved <
	// Queries; a fresh-oracle run solves everything it issues.
	Stats anomaly.SessionStats
	// Certificate is the replayed-witness certificate of the run: every
	// initial pair replayed against the original program, plus the SC and
	// repaired-program negative controls. Only populated with
	// Options.Certify.
	Certificate *replay.RepairCertificate
	// Elapsed is the wall-clock duration of the run, measured inside the
	// pipeline so every entry point (context-first, legacy wrappers, the
	// service) reports the same number.
	Elapsed time.Duration

	// Degraded is set when the run was cut short by a resource bound — a
	// SAT solve budget (Options.SolveBudget) or a per-stage deadline
	// (Options.Stages) — and the result is therefore partial. What a
	// degraded result still soundly claims: Program is a valid refactoring
	// of the input, every pair in Initial/Remaining is a real anomaly, and
	// running SerializableTxns under SC removes every anomaly the run knew
	// about or could not rule out (unknown-verdict transactions are
	// conservatively included). Only completeness is lost: some pairs may
	// have gone undetected or unrepaired.
	Degraded bool
	// DegradedStages names the pipeline stages whose deadline allowance
	// expired: "detect", "repair", "certify" (budget-exhausted SAT solves
	// set Degraded and the counters below without naming a stage).
	DegradedStages []string
	// Unknown counts access pairs whose verdict ran out of solve budget
	// across the detection passes; Exhausted the individual
	// budget-exhausted SAT solves.
	Unknown   int
	Exhausted int

	// stepBuf is the reused formatting scratch behind stepf: the pair loop
	// logs one step per access pair, and formatting each into a fresh
	// Sprintf string was measurable allocation churn on large benchmarks.
	stepBuf []byte
}

// stepf appends one formatted entry to Steps, formatting through the
// reused scratch buffer so only the retained string itself allocates.
func (r *Result) stepf(format string, args ...any) {
	r.stepBuf = fmt.Appendf(r.stepBuf[:0], format, args...)
	r.Steps = append(r.Steps, string(r.stepBuf))
}

// RepairedCount returns how many of the initial pairs were eliminated.
func (r *Result) RepairedCount() int { return len(r.Initial) - len(r.Remaining) }

// Options configures a repair run.
type Options struct {
	// Incremental selects the fingerprinted, SAT-query-cached detection
	// session shared by the pipeline's three detection passes. Results are
	// identical either way; only the number of solved SAT queries differs.
	Incremental bool
	// Parallelism bounds the worker goroutines the detection session fans
	// (txn, witness) tasks out on. Zero — the unset default — selects
	// DefaultParallelism (min(GOMAXPROCS, 4)): multi-core detection is the
	// fast path. Pass an explicit 1 for strictly sequential detection (the
	// pre-flip behavior — still the right call when the caller fans Repair
	// itself out, as the experiment grid does), or any n > 1 to pin the
	// worker count. Reported results are identical at every setting.
	// Ignored without Incremental.
	Parallelism int
	// Portfolio > 1 races that many diversified CDCL replicas per detection
	// SAT query, first definitive verdict wins (sat.SetPortfolio). Verdicts
	// — which pairs are anomalous, under which witness — are unchanged, but
	// reported fields and witness schedules come from whichever replica's
	// model won and are not byte-reproducible across runs; portfolio
	// queries also bypass the session's query cache. Off (<= 1) by default.
	// Ignored without Incremental.
	Portfolio int
	// Certify records witness schedules during detection (reports and cache
	// keys are unchanged — recording is strictly additive) and, after the
	// pipeline, replays every initial pair as an executable certificate
	// with its negative controls (Result.Certificate).
	Certify bool
	// Session, when non-nil, is an externally owned incremental detection
	// session the pipeline's three passes run through instead of a private
	// one. The engine injects per-client sessions here so repeated repairs
	// of related programs share cached work across requests. The session's
	// model must equal the repair model, and a certifying run requires a
	// recording session (anomaly.DetectSession.RecordWitnesses). Implies
	// incremental detection.
	Session *anomaly.DetectSession
	// Client is an opaque caller identity, carried for the service layer's
	// session keying and logs; the pipeline itself ignores it.
	Client string
	// SolveBudget bounds every SAT solve of the pipeline's detection
	// passes (sat.Budget semantics; the zero budget is unlimited and
	// byte-identical to an unbudgeted run). Budget-exhausted solves
	// degrade the result instead of failing the request.
	SolveBudget sat.Budget
	// Stages splits the run into per-stage deadline allowances so one slow
	// stage degrades instead of consuming the caller's whole deadline.
	// Zero fields leave the stage bounded only by ctx.
	Stages StageDeadlines
}

// StageDeadlines carves a request deadline into per-stage allowances. The
// three detection passes share Detect (each pass draws on what the earlier
// ones left); the pair-repair loop stops starting new pairs once Repair is
// spent; certificate replay is cut off after Certify, returning a partial
// certificate. An expired stage marks the Result degraded — it never fails
// the request (the caller's own ctx still aborts everything).
type StageDeadlines struct {
	Detect  time.Duration
	Repair  time.Duration
	Certify time.Duration
}

// Split carves a total deadline into the default stage proportions: 55%
// detect, 25% repair, 20% certify. The engine applies it to a request's
// remaining deadline when the caller set no explicit stages.
func Split(total time.Duration) StageDeadlines {
	if total <= 0 {
		return StageDeadlines{}
	}
	return StageDeadlines{
		Detect:  total * 55 / 100,
		Repair:  total * 25 / 100,
		Certify: total * 20 / 100,
	}
}

// Option is a functional setting for Run, the context-first entry point.
type Option func(*Options)

// Incremental toggles the fingerprinted, SAT-query-cached detection session
// (on by default).
func Incremental(on bool) Option { return func(o *Options) { o.Incremental = on } }

// Parallelism bounds the detection session's fan-out workers (see
// Options.Parallelism; 0 selects DefaultParallelism, 1 forces sequential).
func Parallelism(n int) Option { return func(o *Options) { o.Parallelism = n } }

// Portfolio races k diversified solver replicas per detection SAT query
// (see Options.Portfolio).
func Portfolio(k int) Option { return func(o *Options) { o.Portfolio = k } }

// Certify enables witness recording plus post-pipeline certificate replay.
func Certify(on bool) Option { return func(o *Options) { o.Certify = on } }

// Session injects an externally owned detection session (see
// Options.Session).
func Session(s *anomaly.DetectSession) Option { return func(o *Options) { o.Session = s } }

// Client tags the run with a caller identity (see Options.Client).
func Client(id string) Option { return func(o *Options) { o.Client = id } }

// SolveBudget bounds every detection SAT solve (see Options.SolveBudget).
func SolveBudget(b sat.Budget) Option { return func(o *Options) { o.SolveBudget = b } }

// Stages installs per-stage deadline allowances (see Options.Stages).
func Stages(s StageDeadlines) Option { return func(o *Options) { o.Stages = s } }

// BuildOptions folds functional options over the default configuration
// (incremental detection on). The service layer uses it to inspect options
// before dispatching.
func BuildOptions(opts ...Option) Options {
	o := Options{Incremental: true}
	for _, f := range opts {
		f(&o)
	}
	return o
}

// Repair runs the full pipeline of Fig. 10 under the given model, with the
// incremental detection engine on (the default configuration).
func Repair(prog *ast.Program, model anomaly.Model) (*Result, error) {
	return RepairWith(prog, model, Options{Incremental: true})
}

// Run is the context-first entry point: the full Fig. 10 pipeline under the
// given model, configured by functional options, aborted (mid-SAT-solve)
// when ctx is cancelled or its deadline passes.
func Run(ctx context.Context, prog *ast.Program, model anomaly.Model, opts ...Option) (*Result, error) {
	return RunWith(ctx, prog, model, BuildOptions(opts...))
}

// RepairWith runs the full pipeline of Fig. 10 under the given model and
// engine options.
func RepairWith(prog *ast.Program, model anomaly.Model, opts Options) (*Result, error) {
	return RunWith(context.Background(), prog, model, opts)
}

// RunWith is Run with a pre-built Options value.
func RunWith(ctx context.Context, prog *ast.Program, model anomaly.Model, opts Options) (*Result, error) {
	start := time.Now()
	detect := func(ctx context.Context, p *ast.Program) (*anomaly.Report, error) {
		return anomaly.DetectBudgeted(ctx, p, model, opts.SolveBudget)
	}
	if opts.Certify {
		detect = func(ctx context.Context, p *ast.Program) (*anomaly.Report, error) {
			return anomaly.DetectWitnessedBudgeted(ctx, p, model, opts.SolveBudget)
		}
	}
	session := opts.Session
	if session != nil {
		if session.Model() != model {
			return nil, fmt.Errorf("repair: injected session detects under %s, not %s", session.Model(), model)
		}
		if opts.Certify && !session.Recording() {
			return nil, fmt.Errorf("repair: certifying run requires a witness-recording session")
		}
	} else if opts.Incremental {
		session = anomaly.NewSession(model)
		if opts.Certify {
			session.RecordWitnesses()
		}
	}
	if session != nil {
		session.SetParallelism(ResolveParallelism(opts.Parallelism))
		session.SetPortfolio(opts.Portfolio)
		session.SetSolveBudget(opts.SolveBudget)
		detect = func(ctx context.Context, p *ast.Program) (*anomaly.Report, error) {
			return session.DetectContext(ctx, p)
		}
	}

	// Snapshot injected-session statistics so Result.Stats reports this
	// run's work, not the shared session's lifetime aggregate. For a
	// private session the snapshot is zero and the subtraction is a no-op.
	var statsBefore anomaly.SessionStats
	if session != nil {
		statsBefore = session.Stats()
	}

	res := &Result{}
	// degrade records one stage's allowance expiring; absorb folds one
	// completed detection pass's budget-degradation into the result.
	degrade := func(stage string) {
		res.Degraded = true
		if !slices.Contains(res.DegradedStages, stage) {
			res.DegradedStages = append(res.DegradedStages, stage)
		}
	}
	freshQueries := 0
	absorb := func(rep *anomaly.Report) {
		res.Degraded = res.Degraded || rep.Degraded
		res.Unknown += rep.Unknown
		res.Exhausted += rep.Exhausted
		freshQueries += rep.Queries
	}
	// finish computes the run's stats and elapsed time; every return path
	// (complete or degraded) goes through it.
	finish := func() {
		if session != nil {
			after := session.Stats()
			res.Stats = anomaly.SessionStats{
				Queries:   after.Queries - statsBefore.Queries,
				Solved:    after.Solved - statsBefore.Solved,
				Replayed:  after.Replayed - statsBefore.Replayed,
				QueryHits: after.QueryHits - statsBefore.QueryHits,
				TxnHits:   after.TxnHits - statsBefore.TxnHits,
				TxnMisses: after.TxnMisses - statsBefore.TxnMisses,
			}
		} else {
			// The fresh oracle solves everything it issues.
			res.Stats = anomaly.SessionStats{Queries: freshQueries, Solved: freshQueries}
		}
		res.Elapsed = time.Since(start)
	}

	// The three detection passes share the detect-stage allowance: each
	// pass runs under a context bounded by what the earlier passes left.
	// An expired stage is a soft outcome (expired=true), not an error —
	// unless the caller's own ctx died, which always aborts the request.
	detectRemaining := opts.Stages.Detect
	runDetect := func(p *ast.Program) (rep *anomaly.Report, expired bool, err error) {
		if opts.Stages.Detect <= 0 {
			rep, err = detect(ctx, p)
			return rep, false, err
		}
		if detectRemaining <= 0 {
			return nil, true, nil
		}
		t0 := time.Now()
		dctx, cancel := context.WithTimeout(ctx, detectRemaining)
		rep, err = detect(dctx, p)
		cancel()
		detectRemaining -= time.Since(t0)
		if err != nil {
			if dctx.Err() != nil && ctx.Err() == nil {
				return nil, true, nil
			}
			return nil, false, err
		}
		return rep, false, nil
	}

	initial, expired, err := runDetect(prog)
	if err != nil {
		return nil, err
	}
	if expired {
		// The initial pass never finished: nothing is known, so degrade to
		// the sound catch-all — leave the program untouched and run every
		// transaction under SC.
		degrade("detect")
		res.Program = prog
		for _, t := range prog.Txns {
			res.SerializableTxns = append(res.SerializableTxns, t.Name)
		}
		res.stepf("detect stage expired before the initial pass; conservatively serializing all %d transactions", len(prog.Txns))
		finish()
		return res, nil
	}
	absorb(initial)
	res.Initial = initial.Pairs

	// The refactoring engine is functional (copy-on-write by default), so
	// the pipeline threads programs instead of mutating a private clone:
	// prog is never touched, and each step shares everything it does not
	// edit with its predecessor.
	p := preprocess(prog, initial.Pairs, res)

	// Re-detect: preprocessing changed command labels (U4 → U4.1, U4.2).
	rep, expired, err := runDetect(p)
	if err != nil {
		return nil, err
	}
	if expired {
		// Post-preprocessing pairs are unknown, so nothing can be repaired;
		// serialize every transaction the initial pass found anomalous.
		degrade("detect")
		res.Program = p
		seen := map[string]bool{}
		for _, pair := range initial.Pairs {
			if !seen[pair.Txn] {
				seen[pair.Txn] = true
				res.SerializableTxns = append(res.SerializableTxns, pair.Txn)
			}
		}
		res.stepf("detect stage expired after preprocessing; conservatively serializing %d anomalous transactions", len(res.SerializableTxns))
		finish()
		return res, nil
	}
	absorb(rep)

	// Pair-repair loop: the stage allowance is checked between pairs, so a
	// slow refactoring degrades by skipping the tail instead of running
	// the request's whole deadline down. Budget-unknown pairs are absent
	// from rep.Pairs by construction — they are skipped, not failed.
	var repairDeadline time.Time
	if opts.Stages.Repair > 0 {
		repairDeadline = time.Now().Add(opts.Stages.Repair)
	}
	for pi, pair := range rep.Pairs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !repairDeadline.IsZero() && time.Now().After(repairDeadline) {
			degrade("repair")
			res.stepf("repair stage expired; skipped %d unprocessed pairs", len(rep.Pairs)-pi)
			break
		}
		if p2, desc, ok := tryRepair(p, pair, res); ok {
			p = p2
			res.stepf("repaired %s: %s", pair, desc)
		} else {
			res.stepf("unrepaired %s: %s", pair, desc)
		}
	}
	if rep.Unknown > 0 {
		res.stepf("skipped %d unknown pairs (solve budget exhausted during detection)", rep.Unknown)
	}

	moved := map[string]map[string]bool{}
	for _, c := range res.Corrs {
		if moved[c.SrcTable] == nil {
			moved[c.SrcTable] = map[string]bool{}
		}
		moved[c.SrcTable][c.SrcField] = true
	}
	p = postprocess(p, res, moved)

	final, expired, err := runDetect(p)
	if err != nil {
		return nil, err
	}
	res.Program = p
	seen := map[string]bool{}
	serialize := func(txn string) {
		if !seen[txn] {
			seen[txn] = true
			res.SerializableTxns = append(res.SerializableTxns, txn)
		}
	}
	if expired {
		// The final pass never confirmed what the repairs eliminated:
		// Remaining is unknown, so serialize every transaction the middle
		// pass saw a (known or unknown) pair in.
		degrade("detect")
		for _, pair := range rep.Pairs {
			serialize(pair.Txn)
		}
		for _, u := range rep.UnknownPairs {
			serialize(u.Txn)
		}
		res.stepf("detect stage expired before the final pass; conservatively serializing %d transactions", len(res.SerializableTxns))
	} else {
		absorb(final)
		res.Remaining = final.Pairs
		for _, pair := range final.Pairs {
			serialize(pair.Txn)
		}
		// Unknown-verdict pairs may be real anomalies: their transactions
		// run under SC too, which keeps the degraded AT-SC deployment
		// sound at the cost of serializing more than strictly necessary.
		for _, u := range final.UnknownPairs {
			serialize(u.Txn)
		}
	}
	if opts.Certify {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cctx, cancel := ctx, func() {}
		if opts.Stages.Certify > 0 {
			cctx, cancel = context.WithTimeout(ctx, opts.Stages.Certify)
		}
		cert, complete := replay.CertifyRepairContext(cctx, prog, res.Program, initial, res.SerializableTxns)
		cancel()
		if !complete {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			degrade("certify")
			res.stepf("certify stage expired; certificate covers %d of %d pairs", cert.Total, len(initial.Pairs))
		}
		res.Certificate = cert
	}
	finish()
	return res, nil
}

// preprocess splits multi-field commands so that each database command is
// involved in at most one anomalous access pair, provided the split fields
// are not accessed together elsewhere in the program (§5).
func preprocess(p *ast.Program, pairs []anomaly.AccessPair, res *Result) *ast.Program {
	groups := map[cmdKey][][]string{}
	for _, pair := range pairs {
		if len(pair.F1) > 0 {
			k := cmdKey{pair.Txn, pair.C1}
			groups[k] = append(groups[k], pair.F1)
		}
		if len(pair.F2) > 0 {
			k := cmdKey{pair.Txn, pair.C2}
			groups[k] = append(groups[k], pair.F2)
		}
	}
	// First compute a split plan for every candidate command, then apply
	// the plans whose field groups are not co-accessed by any command that
	// is not itself being split compatibly.
	plans := map[cmdKey][][]string{}
	for k, sets := range groups {
		t := p.Txn(k.txn)
		if t == nil {
			continue
		}
		c := findCommand(t, k.label)
		if c == nil {
			continue
		}
		var own []string
		switch x := c.(type) {
		case *ast.Update:
			for _, a := range x.Sets {
				own = append(own, a.Field)
			}
		case *ast.Select:
			if x.Star {
				continue
			}
			own = x.Fields
		default:
			continue
		}
		if len(own) < 2 {
			continue
		}
		partition := buildPartition(own, sets)
		if len(partition) >= 2 {
			plans[k] = partition
		}
	}
	// Apply plans in a deterministic order: plan interactions
	// (coAccessedElsewhere) and the step log must not depend on map
	// iteration order — the incremental engine's equivalence tests compare
	// pipelines step by step.
	planKeys := slices.SortedFunc(maps.Keys(plans), func(a, b cmdKey) int {
		if c := strings.Compare(a.txn, b.txn); c != 0 {
			return c
		}
		return strings.Compare(a.label, b.label)
	})
	for _, k := range planKeys {
		partition := plans[k]
		t := p.Txn(k.txn)
		c := findCommand(t, k.label)
		if c == nil {
			continue
		}
		if coAccessedElsewhere(p, k.txn, k.label, c.TableName(), partition, plans) {
			continue
		}
		var err error
		var np *ast.Program
		switch c.(type) {
		case *ast.Update:
			np, err = refactor.SplitUpdate(p, k.txn, k.label, partition)
		case *ast.Select:
			np, err = refactor.SplitSelect(p, k.txn, k.label, partition)
		}
		if err == nil {
			p = np
			res.stepf("split %s.%s into %d commands %v", k.txn, k.label, len(partition), partition)
		}
	}
	return p
}

type cmdKey struct{ txn, label string }

// buildPartition groups a command's fields: fields named together by some
// access pair stay together, overlapping groups are unioned, and leftover
// fields form one final group.
func buildPartition(own []string, sets [][]string) [][]string {
	ownSet := map[string]bool{}
	for _, f := range own {
		ownSet[f] = true
	}
	var parts []map[string]bool
	for _, s := range sets {
		g := map[string]bool{}
		for _, f := range s {
			if ownSet[f] {
				g[f] = true
			}
		}
		if len(g) == 0 {
			continue
		}
		// Union with any overlapping existing group.
		merged := g
		var next []map[string]bool
		for _, existing := range parts {
			if overlaps(existing, merged) {
				for f := range existing {
					merged[f] = true
				}
			} else {
				next = append(next, existing)
			}
		}
		parts = append(next, merged)
	}
	covered := map[string]bool{}
	for _, g := range parts {
		for f := range g {
			covered[f] = true
		}
	}
	var leftover []string
	for _, f := range own {
		if !covered[f] {
			leftover = append(leftover, f)
		}
	}
	var out [][]string
	for _, g := range parts {
		var fs []string
		for _, f := range own { // preserve declaration order
			if g[f] {
				fs = append(fs, f)
			}
		}
		out = append(out, fs)
	}
	if len(leftover) > 0 {
		out = append(out, leftover)
	}
	return out
}

func overlaps(a, b map[string]bool) bool {
	for f := range a {
		if b[f] {
			return true
		}
	}
	return false
}

// coAccessedElsewhere reports whether any other command accesses fields
// from two different groups of the partition — splitting would then risk
// introducing new anomalies (§5). A command that is itself planned to be
// split with a compatible partition (each of its groups intersects at most
// one of ours) does not block: after both splits no command co-accesses
// the separated fields.
func coAccessedElsewhere(p *ast.Program, txn, label, table string, partition [][]string, plans map[cmdKey][][]string) bool {
	groupOf := map[string]int{}
	for i, g := range partition {
		for _, f := range g {
			groupOf[f] = i
		}
	}
	for _, t := range p.Txns {
		for _, c := range ast.Commands(t.Body) {
			if t.Name == txn && c.CmdLabel() == label {
				continue
			}
			if c.TableName() != table {
				continue
			}
			if other, ok := plans[cmdKey{t.Name, c.CmdLabel()}]; ok && refines(other, groupOf) {
				continue
			}
			acc := ast.CommandAccess(c, p.Schema(table))
			seen := -1
			for _, f := range append(append([]string(nil), acc.Reads...), acc.Writes...) {
				g, ok := groupOf[f]
				if !ok {
					continue
				}
				if seen >= 0 && g != seen {
					return true
				}
				seen = g
			}
		}
	}
	return false
}

// refines reports whether each group of the other command's partition
// touches at most one of our groups.
func refines(other [][]string, groupOf map[string]int) bool {
	for _, g := range other {
		seen := -1
		for _, f := range g {
			gi, ok := groupOf[f]
			if !ok {
				continue
			}
			if seen >= 0 && gi != seen {
				return false
			}
			seen = gi
		}
	}
	return true
}

// tryRepair implements try_repair of Fig. 10. It returns the repaired
// program, a description of what happened, and whether it succeeded.
func tryRepair(p *ast.Program, pair anomaly.AccessPair, res *Result) (*ast.Program, string, bool) {
	t := p.Txn(pair.Txn)
	if t == nil {
		return p, "transaction vanished", false
	}
	c1 := findCommand(t, pair.C1)
	c2 := findCommand(t, pair.C2)
	if c1 == nil || c2 == nil {
		return p, "already repaired (command merged away)", true
	}
	if sameKind(c1, c2) {
		if c1.TableName() == c2.TableName() {
			if np, err := refactor.Merge(p, pair.Txn, pair.C1, pair.C2); err == nil {
				return np, fmt.Sprintf("merged %s and %s", pair.C1, pair.C2), true
			} else {
				return tryLogging(p, pair, fmt.Sprintf("merge failed (%v)", err), res)
			}
		}
		if np, corr, err := tryRedirect(p, t, c1, c2); err == nil {
			if np2, err2 := refactor.Merge(np, pair.Txn, pair.C1, pair.C2); err2 == nil {
				res.Corrs = append(res.Corrs, corr)
				return np2, fmt.Sprintf("redirected via %s then merged", corr), true
			} else {
				return tryLogging(p, pair, fmt.Sprintf("post-redirect merge failed (%v)", err2), res)
			}
		}
	}
	return tryLogging(p, pair, "commands not mergeable", res)
}

func sameKind(a, b ast.DBCommand) bool {
	switch a.(type) {
	case *ast.Select:
		_, ok := b.(*ast.Select)
		return ok
	case *ast.Update:
		_, ok := b.(*ast.Update)
		return ok
	case *ast.Insert:
		_, ok := b.(*ast.Insert)
		return ok
	}
	return false
}

// tryRedirect implements the redirect attempt of Fig. 10 line 5: introduce
// a value correspondence moving c2's field into c1's schema, deriving the
// record correspondence θ̂ from the commands' where clauses (§5: "by
// analyzing the commands' where clauses and identifying equivalent
// expressions used in their constraints").
func tryRedirect(p *ast.Program, t *ast.Txn, c1, c2 ast.DBCommand) (*ast.Program, refactor.ValueCorr, error) {
	srcTable := c2.TableName()
	dstTable := c1.TableName()
	srcSchema := p.Schema(srcTable)
	dstSchema := p.Schema(dstTable)
	if srcSchema == nil || dstSchema == nil {
		return nil, refactor.ValueCorr{}, fmt.Errorf("repair: unknown schema")
	}
	srcField, err := singleField(c2)
	if err != nil {
		return nil, refactor.ValueCorr{}, err
	}
	theta, err := deriveTheta(p, t, c1, c2, srcSchema, dstSchema)
	if err != nil {
		return nil, refactor.ValueCorr{}, err
	}
	f := srcSchema.Field(srcField)
	dstField := refactor.DstFieldName(dstSchema, srcField)
	np, err := refactor.IntroField(p, dstTable, ast.Field{Name: dstField, Type: f.Type})
	if err != nil {
		return nil, refactor.ValueCorr{}, err
	}
	corr := refactor.ValueCorr{
		SrcTable: srcTable, SrcField: srcField,
		DstTable: dstTable, DstField: dstField,
		Theta: theta, Agg: ast.AggAny,
	}
	np, err = refactor.ApplyCorr(np, corr)
	if err != nil {
		return nil, refactor.ValueCorr{}, err
	}
	return np, corr, nil
}

// singleField returns the unique field a (post-preprocessing) command
// accesses, or an error if the command touches several.
func singleField(c ast.DBCommand) (string, error) {
	switch x := c.(type) {
	case *ast.Select:
		if x.Star || len(x.Fields) != 1 {
			return "", fmt.Errorf("repair: %s accesses multiple fields", x.Label)
		}
		return x.Fields[0], nil
	case *ast.Update:
		if len(x.Sets) != 1 {
			return "", fmt.Errorf("repair: %s sets multiple fields", x.Label)
		}
		return x.Sets[0].Field, nil
	default:
		return "", fmt.Errorf("repair: %s is not redirectable", c.CmdLabel())
	}
}

// deriveTheta maps each primary-key field of c2's schema to a field of
// c1's schema carrying the same value, using three equivalence patterns:
//
//	(a) the pin is x.g where x was selected from c1's table — θ̂(f) = g;
//	(b) c1 is an update setting g = e and the pin equals e — θ̂(f) = g;
//	(c) c1's where pins its own key field g to the same expression — θ̂(f) = g.
func deriveTheta(p *ast.Program, t *ast.Txn, c1, c2 ast.DBCommand, srcSchema, dstSchema *ast.Schema) (map[string]string, error) {
	pins, ok := ast.WellFormedWhere(whereOf(c2), srcSchema)
	if !ok {
		return nil, fmt.Errorf("repair: %s: where clause is not a primary-key equality conjunction", c2.CmdLabel())
	}
	theta := map[string]string{}
	for _, pk := range srcSchema.PrimaryKey() {
		pin := pins[pk.Name]
		g := ""
		// (a) lookup through a select on the destination table.
		if fa, isFA := pin.(*ast.FieldAt); isFA && fa.Index == nil {
			if sel := findSelectVar(t, fa.Var); sel != nil && sel.Table == dstSchema.Name {
				g = fa.Field
			}
		}
		// (b) pinned by one of c1's own assignments.
		if g == "" {
			if u, isU := c1.(*ast.Update); isU {
				for _, a := range u.Sets {
					if ast.EqualExpr(a.Expr, pin) {
						g = a.Field
						break
					}
				}
			}
		}
		// (c) c1 pins one of its key fields to the same expression.
		if g == "" {
			if dstPins, ok := ast.WellFormedWhere(whereOf(c1), dstSchema); ok {
				for gf, ge := range dstPins {
					if ast.EqualExpr(ge, pin) {
						g = gf
						break
					}
				}
			}
		}
		if g == "" {
			return nil, fmt.Errorf("repair: cannot relate %s.%s to a field of %s", srcSchema.Name, pk.Name, dstSchema.Name)
		}
		if dstSchema.Field(g) == nil {
			return nil, fmt.Errorf("repair: derived θ̂ field %s.%s does not exist", dstSchema.Name, g)
		}
		theta[pk.Name] = g
	}
	return theta, nil
}

// tryLogging implements try_logging of Fig. 10: translate the pair's
// update into an insert on a fresh logging schema; succeed only if the
// pair's select becomes dead code (§5). The introduced correspondence is
// recorded in res for containment checking and data migration.
func tryLogging(p *ast.Program, pair anomaly.AccessPair, prevFailure string, res *Result) (*ast.Program, string, bool) {
	t := p.Txn(pair.Txn)
	c1 := findCommand(t, pair.C1)
	c2 := findCommand(t, pair.C2)
	var sel *ast.Select
	var upd *ast.Update
	for _, c := range []ast.DBCommand{c1, c2} {
		switch x := c.(type) {
		case *ast.Select:
			sel = x
		case *ast.Update:
			upd = x
		}
	}
	if sel == nil || upd == nil {
		return p, prevFailure + "; logging needs a select/update pair", false
	}
	if len(upd.Sets) != 1 {
		return p, prevFailure + "; update sets multiple fields", false
	}
	field := upd.Sets[0].Field
	np, corr, err := refactor.BuildLoggerSchema(p, upd.Table, field)
	if err != nil {
		return p, fmt.Sprintf("%s; logging failed (%v)", prevFailure, err), false
	}
	np, err = refactor.ApplyCorr(np, corr)
	if err != nil {
		return p, fmt.Sprintf("%s; logging failed (%v)", prevFailure, err), false
	}
	if !refactor.IsDeadSelect(np, pair.Txn, sel.Label) {
		return p, prevFailure + "; logging left the select live", false
	}
	res.Corrs = append(res.Corrs, corr)
	return np, fmt.Sprintf("logged %s.%s via %s", upd.Table, field, corr.DstTable), true
}

func whereOf(c ast.DBCommand) ast.Expr {
	switch x := c.(type) {
	case *ast.Select:
		return x.Where
	case *ast.Update:
		return x.Where
	default:
		return nil
	}
}

func findCommand(t *ast.Txn, label string) ast.DBCommand {
	var found ast.DBCommand
	ast.WalkStmts(t.Body, func(s ast.Stmt) bool {
		if c, ok := s.(ast.DBCommand); ok && c.CmdLabel() == label {
			found = c
		}
		return true
	})
	return found
}

func findSelectVar(t *ast.Txn, v string) *ast.Select {
	var found *ast.Select
	ast.WalkStmts(t.Body, func(s ast.Stmt) bool {
		if sel, ok := s.(*ast.Select); ok && sel.Var == v {
			found = sel
		}
		return true
	})
	return found
}

// postprocess removes dead code, merges whatever became mergeable, and
// garbage-collects the schemas and fields the refactoring obsoleted
// (Fig. 10 post_process). It returns the cleaned program.
func postprocess(p *ast.Program, res *Result, moved map[string]map[string]bool) *ast.Program {
	p, n := refactor.RemoveDeadSelects(p)
	if n > 0 {
		res.stepf("removed %d dead selects", n)
	}
	p, merged := mergeAll(p)
	if merged > 0 {
		res.stepf("merged %d command pairs in post-processing", merged)
	}
	p, n = refactor.RemoveDeadSelects(p)
	if n > 0 {
		res.stepf("removed %d dead selects", n)
	}
	p, removed := refactor.GCSchemas(p, moved)
	if len(removed) > 0 {
		res.stepf("dropped obsolete tables %v", removed)
	}
	return p
}

// mergeAll exhaustively merges same-kind commands that provably select the
// same records. Failing probes are free — Merge validates before building
// anything — and a successful merge path-copies only the merged
// transaction. The scan continues from the merge point: merging c2 into c1
// removes c2 and may change c1's shape, so the inner scan resumes at the
// same i with the refreshed command list instead of restarting the whole
// transaction — a merge can only enable pairs involving commands at or
// after i, and the outer fixpoint loop catches pairs a merge enabled
// earlier in the list.
func mergeAll(p *ast.Program) (*ast.Program, int) {
	merged := 0
	for ti := range p.Txns {
		name := p.Txns[ti].Name
		for {
			progress := false
			cmds := ast.Commands(p.Txns[ti].Body)
			for i := 0; i < len(cmds); i++ {
				for j := i + 1; j < len(cmds); j++ {
					if cmds[i].TableName() != cmds[j].TableName() || !sameKind(cmds[i], cmds[j]) {
						continue
					}
					if np, err := refactor.Merge(p, name, cmds[i].CmdLabel(), cmds[j].CmdLabel()); err == nil {
						p = np
						merged++
						progress = true
						// c2 is gone and c1 changed: refresh the list and
						// rescan c1 against its new successors.
						cmds = ast.Commands(p.Txns[ti].Body)
						j = i
					}
				}
			}
			if !progress {
				break
			}
		}
	}
	return p, merged
}
