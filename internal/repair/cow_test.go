package repair

import (
	"fmt"
	"reflect"
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/progen"
	"atropos/internal/refactor"
)

// This file is the differential oracle for the copy-on-write refactoring
// engine (DESIGN.md §10): the legacy deep-clone engine — which mutates only
// private clones and therefore cannot suffer shared-node corruption — is
// run over the same pipelines and every observable output is compared
// byte for byte. A COW bug that mutated a shared subtree, path-copied the
// wrong spine, or diverged in rebuild order would surface as a printed
// program, step log, correspondence, or pair-count difference.

// pipelineSummary captures everything a repair pipeline observably
// produces.
type pipelineSummary struct {
	Printed   string
	Steps     []string
	Corrs     string
	Initial   []anomaly.AccessPair
	Remaining []anomaly.AccessPair
	SerTxns   []string
}

// runEngine runs the full repair pipeline under the selected refactoring
// engine and summarizes the result.
func runEngine(t *testing.T, prog *ast.Program, model anomaly.Model, deep bool) pipelineSummary {
	t.Helper()
	refactor.SetDeepClone(deep)
	defer refactor.SetDeepClone(false)
	res, err := Repair(prog, model)
	if err != nil {
		t.Fatalf("Repair (deep=%t): %v", deep, err)
	}
	return pipelineSummary{
		Printed:   ast.Format(res.Program),
		Steps:     res.Steps,
		Corrs:     fmt.Sprint(res.Corrs),
		Initial:   res.Initial,
		Remaining: res.Remaining,
		SerTxns:   res.SerializableTxns,
	}
}

func diffSummaries(t *testing.T, name string, deep, cow pipelineSummary) {
	t.Helper()
	if deep.Printed != cow.Printed {
		t.Errorf("%s: printed programs diverge\n--- deep-clone ---\n%s\n--- cow ---\n%s", name, deep.Printed, cow.Printed)
	}
	if !reflect.DeepEqual(deep.Steps, cow.Steps) {
		t.Errorf("%s: steps diverge\ndeep %v\ncow  %v", name, deep.Steps, cow.Steps)
	}
	if deep.Corrs != cow.Corrs {
		t.Errorf("%s: correspondences diverge\ndeep %s\ncow  %s", name, deep.Corrs, cow.Corrs)
	}
	if !reflect.DeepEqual(deep.Initial, cow.Initial) {
		t.Errorf("%s: initial pairs diverge (%d vs %d)", name, len(deep.Initial), len(cow.Initial))
	}
	if !reflect.DeepEqual(deep.Remaining, cow.Remaining) {
		t.Errorf("%s: remaining pairs diverge (%d vs %d)", name, len(deep.Remaining), len(cow.Remaining))
	}
	if !reflect.DeepEqual(deep.SerTxns, cow.SerTxns) {
		t.Errorf("%s: serializable txn sets diverge\ndeep %v\ncow  %v", name, deep.SerTxns, cow.SerTxns)
	}
}

// TestCOWDeepCloneEquivalenceBenchmarks runs the differential oracle over
// all nine paper benchmarks under every weak consistency model.
func TestCOWDeepCloneEquivalenceBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, b := range benchmarks.All() {
		prog, err := b.Program()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, model := range []anomaly.Model{anomaly.EC, anomaly.CC, anomaly.RR} {
			name := fmt.Sprintf("%s/%v", b.Name, model)
			deep := runEngine(t, prog, model, true)
			cow := runEngine(t, prog, model, false)
			diffSummaries(t, name, deep, cow)
		}
	}
}

// TestCOWDeepCloneEquivalenceProgen runs the differential oracle over
// randomly generated programs.
func TestCOWDeepCloneEquivalenceProgen(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(0); seed < 24; seed++ {
		// Generate two structurally identical programs: the engines must
		// not share input nodes through the cons table's canonicalization
		// of literals, or a deep-engine mutation could leak into the COW
		// run's input (progen interns expressions, so equal literals of
		// the two copies may alias — by design).
		name := fmt.Sprintf("seed-%d", seed)
		deep := runEngine(t, progen.Program(seed), anomaly.EC, true)
		cow := runEngine(t, progen.Program(seed), anomaly.EC, false)
		diffSummaries(t, name, deep, cow)
	}
}

// TestCOWDoesNotMutateInput pins the sharing contract from the caller's
// side: the input program of a repair prints identically before and after,
// and the repaired program of an untouched transaction shares its node
// with the input (path copying, not deep copying).
func TestCOWDoesNotMutateInput(t *testing.T) {
	prog := benchmarks.SEATS.MustProgram()
	before := ast.Format(prog)
	res, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatal(err)
	}
	if after := ast.Format(prog); after != before {
		t.Fatalf("repair mutated its input program:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	shared := 0
	for _, rt := range res.Program.Txns {
		for _, ot := range prog.Txns {
			if rt == ot {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Error("no transaction node shared between input and repaired program: COW is deep-copying")
	}
}
