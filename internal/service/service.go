// Package service is the HTTP (JSON) face of the engine: atroposd's
// handlers. Five POST endpoints mirror the engine's verbs —
//
//	POST /v1/parse     {source}                      → parsed/formatted program
//	POST /v1/analyze   {source|benchmark, model, …}  → anomaly report
//	POST /v1/repair    {source|benchmark, model, …}  → repair result
//	POST /v1/certify   {source|benchmark, model}     → witness-replay certificate
//	POST /v1/simulate  {benchmark, topology, mode, …} → cluster-simulation point
//	GET  /v1/stats                                   → engine counters
//	GET  /healthz                                    → liveness (always 200)
//	GET  /readyz                                     → readiness (503 while draining)
//
// Request contexts thread into the engine (and down to the SAT solvers), so
// a disconnected client or an expired per-request timeout_ms aborts the
// work mid-solve. Engine overload surfaces as 429 with Retry-After; a
// missed deadline as 504. A panicking handler answers 500 and the daemon
// keeps serving — ServeHTTP isolates every request behind a recover.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/cluster"
	"atropos/internal/engine"
	"atropos/internal/repair"
	"atropos/internal/sat"
)

// maxBodyBytes bounds request bodies; programs are small DSL texts.
const maxBodyBytes = 1 << 20

// Server wires the engine's verbs to HTTP routes. Construct with New.
type Server struct {
	eng    *engine.Engine
	mux    *http.ServeMux
	ready  atomic.Bool
	logf   func(format string, args ...any)
	nextID atomic.Int64 // fallback X-Request-ID counter
}

// ridKey carries the request id through the handler context.
type ridKey struct{}

// requestID returns the id ServeHTTP assigned to this request.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(ridKey{}).(string)
	return id
}

// New builds the HTTP server for an engine. The server starts ready.
func New(eng *engine.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), logf: log.Printf}
	s.ready.Store(true)
	s.mux.HandleFunc("POST /v1/parse", s.handleParse)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/repair", s.handleRepair)
	s.mux.HandleFunc("POST /v1/certify", s.handleCertify)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// SetReady flips the /readyz answer. The daemon flips it to false on
// SIGTERM before draining, so load balancers stop routing new traffic
// while in-flight requests finish.
func (s *Server) SetReady(ok bool) { s.ready.Store(ok) }

// ServeHTTP implements http.Handler. Every request runs behind a recover:
// a panicking handler answers 500 (when nothing was written yet) and the
// daemon keeps serving — one poisoned request must not take the process
// down. http.ErrAbortHandler passes through: it is net/http's own
// abort-this-response protocol, not a defect.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Every request gets an id — the caller's X-Request-ID when present, a
	// generated one otherwise — echoed on the response, threaded through the
	// handler context, and stamped on logs and error bodies, so one request
	// can be traced across client, daemon, and panic stacks.
	rid := r.Header.Get("X-Request-ID")
	if rid == "" {
		rid = fmt.Sprintf("atropos-%d", s.nextID.Add(1))
	}
	w.Header().Set("X-Request-ID", rid)
	r = r.WithContext(context.WithValue(r.Context(), ridKey{}, rid))
	defer func() {
		if v := recover(); v != nil {
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.logf("service: panic serving %s %s (request %s): %v\n%s", r.Method, r.URL.Path, rid, v, debug.Stack())
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "internal error", RequestID: rid})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// handleHealthz is liveness: the process is up and serving HTTP. Always
// 200 — readiness is the endpoint that goes dark during drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 while accepting work, 503 once the
// daemon is draining for shutdown.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ProgramRequest is the shared request shape of the program-centric
// endpoints. Exactly one of Source (DSL text) or Benchmark (a Table 1
// name) selects the program.
type ProgramRequest struct {
	Source    string `json:"source,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	// Model is the consistency model ("EC", "CC", "RR", "SC"); default EC.
	Model string `json:"model,omitempty"`
	// Client keys this caller's incremental DetectSession in the engine's
	// LRU; empty disables session reuse.
	Client string `json:"client,omitempty"`
	// TimeoutMs bounds the request server-side; 0 means no extra deadline.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Certify (repair only) replays every initial anomaly as an executable
	// certificate with negative controls.
	Certify bool `json:"certify,omitempty"`
	// Incremental (repair/analyze) toggles cached incremental detection;
	// defaults to true.
	Incremental *bool `json:"incremental,omitempty"`
	// Parallelism bounds the detection session's (txn, witness) fan-out;
	// 0 defers to the engine's default (min(GOMAXPROCS, 4)), 1 forces
	// sequential detection.
	Parallelism int `json:"parallelism,omitempty"`
	// Portfolio > 1 races that many diversified SAT-solver replicas per
	// detection query, first definitive verdict wins. Reported anomalies
	// are unchanged; the witnessing fields/schedules are whichever
	// replica's model won and are not byte-reproducible.
	Portfolio int `json:"portfolio,omitempty"`
	// BudgetConflicts / BudgetPropagations bound each SAT solve's work
	// (conflicts learned / literals propagated); BudgetArenaLits caps its
	// clause-arena growth. A solve past its budget returns "unknown" and
	// the response degrades (degraded/unknown fields) instead of erroring.
	// Zero disables that dimension; all-zero is byte-identical to today.
	BudgetConflicts    int64 `json:"budget_conflicts,omitempty"`
	BudgetPropagations int64 `json:"budget_propagations,omitempty"`
	BudgetArenaLits    int64 `json:"budget_arena_lits,omitempty"`
}

// budget translates the request's solver-budget knobs.
func (req *ProgramRequest) budget() sat.Budget {
	return sat.Budget{
		Conflicts:    req.BudgetConflicts,
		Propagations: req.BudgetPropagations,
		ArenaLits:    req.BudgetArenaLits,
	}
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// PairJSON is one anomalous access pair.
type PairJSON struct {
	Txn     string   `json:"txn"`
	C1      string   `json:"c1"`
	F1      []string `json:"f1,omitempty"`
	C2      string   `json:"c2"`
	F2      []string `json:"f2,omitempty"`
	Kind    string   `json:"kind"`
	Witness string   `json:"witness"`
	D1      string   `json:"d1"`
	D2      string   `json:"d2"`
	Edge1   string   `json:"edge1"`
	Edge2   string   `json:"edge2"`
	Display string   `json:"display"`
}

func pairJSON(p anomaly.AccessPair) PairJSON {
	return PairJSON{
		Txn: p.Txn,
		C1:  p.C1, F1: p.F1,
		C2: p.C2, F2: p.F2,
		Kind:    string(p.Kind),
		Witness: p.Witness.Txn,
		D1:      p.Witness.D1,
		D2:      p.Witness.D2,
		Edge1:   string(p.Witness.Edge1),
		Edge2:   string(p.Witness.Edge2),
		Display: p.String(),
	}
}

func pairsJSON(ps []anomaly.AccessPair) []PairJSON {
	out := make([]PairJSON, len(ps))
	for i, p := range ps {
		out[i] = pairJSON(p)
	}
	return out
}

// ParseResponse echoes the accepted program.
type ParseResponse struct {
	Formatted string `json:"formatted"`
	Txns      int    `json:"txns"`
	Tables    int    `json:"tables"`
}

// AnalyzeResponse is the anomaly report.
type AnalyzeResponse struct {
	Model   string     `json:"model"`
	Count   int        `json:"count"`
	Pairs   []PairJSON `json:"pairs"`
	Queries int        `json:"queries"`
	Solved  int        `json:"solved"`
	// Degraded marks a partial report: Unknown access pairs hit the solve
	// budget (Exhausted individual solves) and are neither confirmed
	// anomalous nor proven clean. Absent on un-budgeted requests.
	Degraded  bool `json:"degraded,omitempty"`
	Unknown   int  `json:"unknown,omitempty"`
	Exhausted int  `json:"exhausted,omitempty"`
	// ElapsedMs is wall clock and therefore non-deterministic; golden
	// tests strip it.
	ElapsedMs float64 `json:"elapsed_ms"`
}

// RepairResponse is the repair pipeline's outcome.
type RepairResponse struct {
	Model            string     `json:"model"`
	Initial          []PairJSON `json:"initial"`
	Remaining        []PairJSON `json:"remaining"`
	Steps            []string   `json:"steps"`
	Corrs            []string   `json:"corrs,omitempty"`
	SerializableTxns []string   `json:"serializable_txns,omitempty"`
	Program          string     `json:"program"`
	Queries          int        `json:"queries"`
	Solved           int        `json:"solved"`
	CacheHitRate     float64    `json:"cache_hit_rate"`
	// Degraded marks a partial result: DegradedStages names the pipeline
	// stages that ran out of budget or stage deadline, Unknown counts
	// undecided access pairs, Exhausted the budget-exhausted solves. The
	// Program is still valid; SerializableTxns stays conservative.
	Degraded       bool      `json:"degraded,omitempty"`
	DegradedStages []string  `json:"degraded_stages,omitempty"`
	Unknown        int       `json:"unknown,omitempty"`
	Exhausted      int       `json:"exhausted,omitempty"`
	Certificate    *CertJSON `json:"certificate,omitempty"`
	ElapsedMs      float64   `json:"elapsed_ms"`
}

// CertJSON summarizes a witness-replay certificate.
type CertJSON struct {
	Model     string  `json:"model"`
	Total     int     `json:"total"`
	Lowered   int     `json:"lowered"`
	Certified int     `json:"certified"`
	Rate      float64 `json:"rate"`
	// Negative controls, present on repair certificates.
	SCRuns             int `json:"sc_runs,omitempty"`
	SCViolations       int `json:"sc_violations,omitempty"`
	RepairedRuns       int `json:"repaired_runs,omitempty"`
	RepairedViolations int `json:"repaired_violations,omitempty"`
}

// CertifyResponse is the standalone certification endpoint's body.
type CertifyResponse struct {
	Model       string     `json:"model"`
	Count       int        `json:"count"`
	Certificate CertJSON   `json:"certificate"`
	Pairs       []PairJSON `json:"pairs"`
	ElapsedMs   float64    `json:"elapsed_ms"`
}

// SimulateRequest drives one cluster-simulator run of a benchmark.
type SimulateRequest struct {
	Benchmark string `json:"benchmark"`
	// Topology: "VA", "US", or "Global" (default VA).
	Topology string `json:"topology,omitempty"`
	// Mode: "EC", "SC", or "AT-SC" (default EC).
	Mode       string `json:"mode,omitempty"`
	Clients    int    `json:"clients,omitempty"`
	DurationMs int    `json:"duration_ms,omitempty"`
	Ops        int64  `json:"ops,omitempty"`
	Records    int    `json:"records,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	TimeoutMs  int    `json:"timeout_ms,omitempty"`
	// FaultScenario names a deterministic fault schedule from the chaos
	// panel (cluster.ChaosScenarios) to run the simulation under; empty
	// means fault-free.
	FaultScenario string `json:"fault_scenario,omitempty"`
}

// SimulateResponse is one measured deployment point.
type SimulateResponse struct {
	Benchmark  string  `json:"benchmark"`
	Topology   string  `json:"topology"`
	Mode       string  `json:"mode"`
	Clients    int     `json:"clients"`
	Committed  int64   `json:"committed"`
	Aborted    int64   `json:"aborted"`
	Throughput float64 `json:"throughput"`
	MeanMs     float64 `json:"mean_ms"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body) //nolint:errcheck // client gone: nothing to report to
}

// writeError maps an engine/pipeline error onto its transport status:
// overload / open circuit → 429 + an adaptive Retry-After (queue depth ×
// observed service time, engine.RetryAfter), deadline → 504, cancellation
// (the client hung up) → 499-style silent drop, everything else → the given
// status. Every error body echoes the request id.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	switch {
	case errors.Is(err, engine.ErrOverloaded), errors.Is(err, engine.ErrCircuitOpen):
		w.Header().Set("Retry-After", retryAfterSeconds(s.eng.RetryAfter()))
		status = http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client disconnected; it will never read a body.
		return
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), RequestID: requestID(r)})
}

// retryAfterSeconds renders a backoff hint as the integral seconds the
// Retry-After header requires, rounding up so the hint never undershoots.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, into any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// requestContext derives the handler context: the client's (so disconnects
// cancel work) plus the optional per-request timeout.
func requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if timeoutMs > 0 {
		return context.WithTimeout(ctx, time.Duration(timeoutMs)*time.Millisecond)
	}
	return ctx, func() {}
}

// program resolves the request's program: inline source or a benchmark name.
func (s *Server) program(req *ProgramRequest) (*ast.Program, error) {
	switch {
	case req.Source != "" && req.Benchmark != "":
		return nil, fmt.Errorf("specify source or benchmark, not both")
	case req.Source != "":
		return s.eng.Parse(req.Source)
	case req.Benchmark != "":
		b := benchmarks.ByName(req.Benchmark)
		if b == nil {
			return nil, fmt.Errorf("unknown benchmark %q", req.Benchmark)
		}
		return b.Program()
	default:
		return nil, fmt.Errorf("missing program: specify source or benchmark")
	}
}

// options translates the request's engine knobs into repair options.
func (req *ProgramRequest) options() []repair.Option {
	opts := []repair.Option{
		repair.Client(req.Client),
		repair.Certify(req.Certify),
		repair.Parallelism(req.Parallelism),
		repair.Portfolio(req.Portfolio),
		repair.SolveBudget(req.budget()),
	}
	if req.Incremental != nil {
		opts = append(opts, repair.Incremental(*req.Incremental))
	}
	return opts
}

func (req *ProgramRequest) model() (anomaly.Model, error) {
	if req.Model == "" {
		return anomaly.EC, nil
	}
	return anomaly.ParseModel(req.Model)
}

func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	var req ProgramRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if req.Source == "" {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("missing source"))
		return
	}
	prog, err := s.eng.Parse(req.Source)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ParseResponse{
		Formatted: ast.Format(prog),
		Txns:      len(prog.Txns),
		Tables:    len(prog.Schemas),
	})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req ProgramRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	prog, err := s.program(&req)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	model, err := req.model()
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := requestContext(r, req.TimeoutMs)
	defer cancel()
	start := time.Now()
	rep, err := s.eng.Analyze(ctx, prog, model, req.options()...)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		Model:     model.String(),
		Count:     rep.Count(),
		Pairs:     pairsJSON(rep.Pairs),
		Queries:   rep.Queries,
		Solved:    rep.Solved,
		Degraded:  rep.Degraded,
		Unknown:   rep.Unknown,
		Exhausted: rep.Exhausted,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	var req ProgramRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	prog, err := s.program(&req)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	model, err := req.model()
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := requestContext(r, req.TimeoutMs)
	defer cancel()
	res, err := s.eng.Repair(ctx, prog, model, req.options()...)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	resp := RepairResponse{
		Model:            model.String(),
		Initial:          pairsJSON(res.Initial),
		Remaining:        pairsJSON(res.Remaining),
		Steps:            res.Steps,
		SerializableTxns: res.SerializableTxns,
		Program:          ast.Format(res.Program),
		Queries:          res.Stats.Queries,
		Solved:           res.Stats.Solved,
		CacheHitRate:     res.Stats.CacheHitRate(),
		Degraded:         res.Degraded,
		DegradedStages:   res.DegradedStages,
		Unknown:          res.Unknown,
		Exhausted:        res.Exhausted,
		ElapsedMs:        float64(res.Elapsed) / float64(time.Millisecond),
	}
	for _, c := range res.Corrs {
		resp.Corrs = append(resp.Corrs, c.String())
	}
	if c := res.Certificate; c != nil {
		resp.Certificate = &CertJSON{
			Model:              c.Model.String(),
			Total:              c.Total,
			Lowered:            c.Lowered,
			Certified:          c.Certified,
			Rate:               c.Rate(),
			SCRuns:             c.SCRuns,
			SCViolations:       c.SCViolations,
			RepairedRuns:       c.RepairedRuns,
			RepairedViolations: c.RepairedViolations,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) {
	var req ProgramRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	prog, err := s.program(&req)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	model, err := req.model()
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := requestContext(r, req.TimeoutMs)
	defer cancel()
	start := time.Now()
	cert, rep, err := s.eng.Certify(ctx, prog, model)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, CertifyResponse{
		Model: model.String(),
		Count: rep.Count(),
		Certificate: CertJSON{
			Model:     cert.Model.String(),
			Total:     cert.Total,
			Lowered:   cert.Lowered,
			Certified: cert.Certified,
			Rate:      cert.Rate(),
		},
		Pairs:     pairsJSON(rep.Pairs),
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	b := benchmarks.ByName(req.Benchmark)
	if b == nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("unknown benchmark %q", req.Benchmark))
		return
	}
	prog, err := b.Program()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	topo := cluster.VACluster
	switch req.Topology {
	case "", "VA":
	case "US":
		topo = cluster.USCluster
	case "Global":
		topo = cluster.GlobalCluster
	default:
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("unknown topology %q (want VA, US, or Global)", req.Topology))
		return
	}
	mode := cluster.ModeEC
	switch req.Mode {
	case "", "EC":
	case "SC":
		mode = cluster.ModeSC
	case "AT-SC", "ATSC":
		mode = cluster.ModeATSC
	default:
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("unknown mode %q (want EC, SC, or AT-SC)", req.Mode))
		return
	}
	scale := benchmarks.Scale{Records: req.Records} // zero ⇒ DefaultScale
	cfg := cluster.Config{
		Program:  prog,
		Mix:      b.Mix,
		Scale:    scale,
		Rows:     b.Rows(scale),
		Topology: topo,
		Mode:     mode,
		Clients:  req.Clients,
		Duration: time.Duration(req.DurationMs) * time.Millisecond,
		Ops:      req.Ops,
		Seed:     req.Seed,
	}
	if req.FaultScenario != "" {
		// The scenarios are sized to the run's virtual horizon (the
		// simulator's 10s default when the request names no duration).
		dur := cfg.Duration
		if dur == 0 {
			dur = 10 * time.Second
		}
		var names []string
		found := false
		for _, sc := range cluster.ChaosScenarios(dur.Microseconds()) {
			names = append(names, sc.Name)
			if sc.Name == req.FaultScenario {
				cfg.Faults = sc.Plan
				found = true
			}
		}
		if !found {
			s.writeError(w, r, http.StatusBadRequest,
				fmt.Errorf("unknown fault_scenario %q (want one of %v)", req.FaultScenario, names))
			return
		}
	}
	ctx, cancel := requestContext(r, req.TimeoutMs)
	defer cancel()
	res, err := s.eng.Simulate(ctx, cfg)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, SimulateResponse{
		Benchmark:  b.Name,
		Topology:   topo.Name,
		Mode:       mode.String(),
		Clients:    res.Point.Clients,
		Committed:  res.Committed,
		Aborted:    res.Aborted,
		Throughput: res.Point.Throughput,
		MeanMs:     res.Point.MeanMs,
		P50Ms:      res.Point.P50Ms,
		P95Ms:      res.Point.P95Ms,
		P99Ms:      res.Point.P99Ms,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Stats())
}
