package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"atropos/internal/engine"
)

var update = flag.Bool("update", false, "rewrite golden files")

func newTestServer(t *testing.T, cfg engine.Config) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(cfg)
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts, eng
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// canonicalize strips the wall-clock field and re-marshals with sorted keys
// so golden comparisons see only deterministic content.
func canonicalize(t *testing.T, data []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("response is not a JSON object: %v\n%s", err, data)
	}
	if _, ok := m["elapsed_ms"]; !ok {
		t.Fatalf("response lacks elapsed_ms:\n%s", data)
	}
	delete(m, "elapsed_ms")
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/service -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverges from golden; run with -update if intentional.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestAnalyzeGolden pins the full /v1/analyze response for SmallBank under
// EC — pairs, witnesses, and SAT-query counts byte for byte.
func TestAnalyzeGolden(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Workers: 1})
	resp, body := post(t, ts, "/v1/analyze", ProgramRequest{Benchmark: "SmallBank"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	checkGolden(t, "analyze_smallbank_ec.json", canonicalize(t, body))
}

// TestRepairGolden pins the full /v1/repair response for SmallBank under EC
// — the refactored program, steps, correspondences, and counters.
func TestRepairGolden(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Workers: 1})
	resp, body := post(t, ts, "/v1/repair", ProgramRequest{Benchmark: "SmallBank"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	checkGolden(t, "repair_smallbank_ec.json", canonicalize(t, body))
}

func TestParseRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Workers: 1})
	src := "table T { id: int key, n: int, }\ntxn get(k: int) { x := select n from T where id = k; return x.n; }\n"
	resp, body := post(t, ts, "/v1/parse", ProgramRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr ParseResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Txns != 1 || pr.Tables != 1 {
		t.Fatalf("parse response = %+v", pr)
	}
	// The formatted text re-parses to the same shape.
	resp, body = post(t, ts, "/v1/parse", ProgramRequest{Source: pr.Formatted})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-parse status %d: %s", resp.StatusCode, body)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Workers: 1})
	cases := []struct {
		name string
		path string
		body any
	}{
		{"syntax error", "/v1/parse", ProgramRequest{Source: "table T {"}},
		{"missing program", "/v1/analyze", ProgramRequest{}},
		{"both source and benchmark", "/v1/analyze", ProgramRequest{Source: "x", Benchmark: "SmallBank"}},
		{"unknown benchmark", "/v1/analyze", ProgramRequest{Benchmark: "nope"}},
		{"unknown model", "/v1/analyze", ProgramRequest{Benchmark: "SmallBank", Model: "XX"}},
		{"unknown field", "/v1/analyze", map[string]any{"benchmark": "SmallBank", "bogus": 1}},
		{"unknown topology", "/v1/simulate", SimulateRequest{Benchmark: "SIBench", Topology: "Mars"}},
		{"unknown mode", "/v1/simulate", SimulateRequest{Benchmark: "SIBench", Mode: "XY"}},
	}
	for _, tc := range cases {
		resp, body := post(t, ts, tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: no error body: %s", tc.name, body)
		}
	}
}

// TestErrorStatusMapping pins writeError's transport contract directly:
// overload / open circuit → 429 + Retry-After, deadline → 504,
// cancellation → silent drop.
func TestErrorStatusMapping(t *testing.T) {
	s := New(engine.New(engine.Config{Workers: 1}))
	req := httptest.NewRequest(http.MethodPost, "/v1/analyze", nil)

	rec := httptest.NewRecorder()
	s.writeError(rec, req, http.StatusInternalServerError, engine.ErrOverloaded)
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("overload status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	rec = httptest.NewRecorder()
	s.writeError(rec, req, http.StatusInternalServerError, engine.ErrCircuitOpen)
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("circuit-open status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("circuit-open 429 without Retry-After")
	}

	rec = httptest.NewRecorder()
	s.writeError(rec, req, http.StatusInternalServerError, fmt.Errorf("solve: %w", context.DeadlineExceeded))
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("deadline status = %d, want 504", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.writeError(rec, req, http.StatusInternalServerError, context.Canceled)
	if rec.Body.Len() != 0 {
		t.Errorf("cancelled request got a body: %s", rec.Body)
	}

	rec = httptest.NewRecorder()
	s.writeError(rec, req, http.StatusBadRequest, errors.New("boom"))
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "boom") {
		t.Errorf("plain error: status %d body %s", rec.Code, rec.Body)
	}
}

// TestTimeoutReturns504: a request whose timeout_ms expires mid-solve comes
// back as 504, and the engine is healthy for the next request.
func TestTimeoutReturns504(t *testing.T) {
	ts, eng := newTestServer(t, engine.Config{Workers: 1})
	resp, body := post(t, ts, "/v1/analyze", ProgramRequest{Benchmark: "TPC-C", TimeoutMs: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	resp, body = post(t, ts, "/v1/analyze", ProgramRequest{Benchmark: "SIBench"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status %d: %s", resp.StatusCode, body)
	}
	if st := eng.Stats(); st.Canceled != 1 || st.Completed != 1 || st.InFlight != 0 {
		t.Fatalf("engine stats = %+v", st)
	}
}

// TestDisconnectAbortsSolve: a client that hangs up mid-request frees its
// worker mid-solve — the engine records a cancellation, not a completion,
// and the slot serves the next request.
func TestDisconnectAbortsSolve(t *testing.T) {
	ts, eng := newTestServer(t, engine.Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	buf, _ := json.Marshal(ProgramRequest{Benchmark: "TPC-C"})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("request succeeded despite disconnect")
	}
	// The handler observes the disconnect asynchronously; wait for the
	// engine to log the cancellation and drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := eng.Stats()
		if st.Canceled == 1 && st.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine never drained: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := post(t, ts, "/v1/analyze", ProgramRequest{Benchmark: "SIBench"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status %d: %s", resp.StatusCode, body)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Workers: 1})
	resp, body := post(t, ts, "/v1/simulate", SimulateRequest{
		Benchmark: "SIBench", Clients: 4, DurationMs: 2000, Records: 10, Seed: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Committed == 0 {
		t.Fatalf("no commits: %+v", sr)
	}
	if sr.Topology != "VA" || sr.Mode != "EC" {
		t.Fatalf("defaults not applied: %+v", sr)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Workers: 2, QueueDepth: 5})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st engine.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.QueueDepth != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConcurrentMixedHTTP runs 16 concurrent mixed requests through the
// HTTP stack against one engine — the service-level companion to the
// engine's race test.
func TestConcurrentMixedHTTP(t *testing.T) {
	ts, eng := newTestServer(t, engine.Config{Workers: 4, QueueDepth: 64, Sessions: 8})
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var (
				path string
				body any
			)
			client := []string{"a", "b", "c", "d"}[i%4]
			switch i % 3 {
			case 0:
				path, body = "/v1/analyze", ProgramRequest{Benchmark: "SmallBank", Client: client}
			case 1:
				path, body = "/v1/repair", ProgramRequest{Benchmark: "Courseware", Client: client}
			default:
				path, body = "/v1/simulate", SimulateRequest{
					Benchmark: "SIBench", Clients: 2, DurationMs: 1000, Records: 10, Seed: int64(i),
				}
			}
			buf, err := json.Marshal(body)
			if err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
			if err != nil {
				errs <- fmt.Errorf("%s: %w", path, err)
				return
			}
			var respBody bytes.Buffer
			respBody.ReadFrom(resp.Body) //nolint:errcheck // best-effort diagnostic
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, respBody.Bytes())
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := eng.Stats()
	if st.Completed != n || st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("engine stats after drain = %+v", st)
	}
}

// TestHealthEndpoints pins the probe contract: /healthz answers 200
// always (liveness), /readyz flips to 503 when the server is draining and
// back with readiness.
func TestHealthEndpoints(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1})
	svc := New(eng)
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz = %d, want 200", got)
	}
	svc.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz while draining = %d, want 200 (liveness is not readiness)", got)
	}
	svc.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz after recovery = %d, want 200", got)
	}
}

// TestGracefulDrain reproduces the daemon's SIGTERM sequence against a
// real http.Server: readiness goes dark, the in-flight request runs to a
// 200, and Shutdown returns only after it finished.
func TestGracefulDrain(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1})
	svc := New(eng)
	srv := &http.Server{Handler: svc}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Shutdown
	base := "http://" + ln.Addr().String()

	type result struct {
		status int
		body   []byte
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		buf, _ := json.Marshal(ProgramRequest{Benchmark: "TPC-C"})
		resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(buf))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		body.ReadFrom(resp.Body) //nolint:errcheck // best-effort diagnostic
		inflight <- result{status: resp.StatusCode, body: body.Bytes()}
	}()
	// Wait until the request holds the engine's only worker slot.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the engine")
		}
		time.Sleep(time.Millisecond)
	}

	// The daemon's shutdown sequence: readiness first, then drain.
	svc.SetReady(false)
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request = %d during drain, want 200: %s", r.status, r.body)
	}
}

// TestPanicRecovery: a panicking handler answers 500 and the daemon keeps
// serving — the recover middleware isolates the request.
func TestPanicRecovery(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1})
	svc := New(eng)
	var logged bytes.Buffer
	svc.logf = func(format string, args ...any) { fmt.Fprintf(&logged, format, args...) }
	svc.mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Fatalf("panicking handler returned no error body: %v", err)
	}
	if !strings.Contains(logged.String(), "kaboom") {
		t.Error("panic value not logged")
	}
	// The daemon survived and still serves.
	resp2, body := post(t, ts, "/v1/analyze", ProgramRequest{Benchmark: "SIBench"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request = %d: %s", resp2.StatusCode, body)
	}
}

// TestSimulateFaultScenario: /v1/simulate accepts a named chaos scenario,
// runs deterministically under it, and rejects unknown names.
func TestSimulateFaultScenario(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Workers: 1})
	req := SimulateRequest{
		Benchmark: "SIBench", Clients: 4, DurationMs: 2000, Records: 10, Seed: 1,
		FaultScenario: "rolling-crash",
	}
	run := func() SimulateResponse {
		resp, body := post(t, ts, "/v1/simulate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var sr SimulateResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	first := run()
	if first.Committed == 0 {
		t.Fatalf("no commits under rolling-crash: %+v", first)
	}
	if second := run(); second != first {
		t.Fatalf("faulted simulation not deterministic:\n  first:  %+v\n  second: %+v", first, second)
	}

	req.FaultScenario = "meteor-strike"
	resp, body := post(t, ts, "/v1/simulate", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scenario: status %d, want 400 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "rolling-crash") {
		t.Errorf("400 body does not list valid scenarios: %s", body)
	}
}
