package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"testing"

	"atropos/internal/engine"
)

// TestRequestIDEcho: a caller-supplied X-Request-ID is echoed on the
// response; without one the daemon mints a unique atropos-N id.
func TestRequestIDEcho(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Workers: 1})

	buf, err := json.Marshal(ProgramRequest{Benchmark: "SIBench"})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "caller-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-7" {
		t.Fatalf("supplied request id echoed as %q, want caller-7", got)
	}

	generated := regexp.MustCompile(`^atropos-\d+$`)
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		resp, _ := post(t, ts, "/v1/analyze", ProgramRequest{Benchmark: "SIBench"})
		got := resp.Header.Get("X-Request-ID")
		if !generated.MatchString(got) {
			t.Fatalf("generated request id %q does not match atropos-N", got)
		}
		if seen[got] {
			t.Fatalf("request id %q reused", got)
		}
		seen[got] = true
	}
}

// TestRequestIDInErrorBody: error responses carry the request id so a
// failing call can be correlated with the daemon's logs.
func TestRequestIDInErrorBody(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Workers: 1})
	buf := []byte(`{"benchmark": "NoSuchBenchmark"}`)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("unknown benchmark accepted")
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID != "trace-me" {
		t.Fatalf("error body request_id = %q, want trace-me", er.RequestID)
	}
}

// TestAnalyzeBudgetDegrades: a starvation solve budget on /v1/analyze
// produces 200 with the partial-result fields set — degradation is a soft
// outcome the client can read, not an error.
func TestAnalyzeBudgetDegrades(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Workers: 1})
	resp, body := post(t, ts, "/v1/analyze", ProgramRequest{
		Benchmark: "SmallBank", BudgetPropagations: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted analyze = %d: %s", resp.StatusCode, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Degraded || ar.Unknown == 0 || ar.Exhausted == 0 {
		t.Fatalf("starved analyze not degraded: %s", body)
	}

	// The same request without a budget is whole.
	resp, body = post(t, ts, "/v1/analyze", ProgramRequest{Benchmark: "SmallBank"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unbudgeted analyze = %d: %s", resp.StatusCode, body)
	}
	var full AnalyzeResponse
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if full.Degraded || full.Unknown != 0 || full.Exhausted != 0 {
		t.Fatalf("unbudgeted analyze degraded: %s", body)
	}
	if len(ar.Pairs) > len(full.Pairs) {
		t.Fatalf("starved analyze reported %d pairs, more than the full %d", len(ar.Pairs), len(full.Pairs))
	}
}

// TestRepairBudgetDegrades: the same contract on /v1/repair — 200, a valid
// repaired program, and the degradation fields populated.
func TestRepairBudgetDegrades(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Workers: 1})
	resp, body := post(t, ts, "/v1/repair", ProgramRequest{
		Benchmark: "SmallBank", BudgetPropagations: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted repair = %d: %s", resp.StatusCode, body)
	}
	var rr RepairResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Degraded || rr.Exhausted == 0 {
		t.Fatalf("starved repair not degraded: degraded=%v exhausted=%d", rr.Degraded, rr.Exhausted)
	}
	if rr.Program == "" {
		t.Fatal("degraded repair returned no program")
	}
}
