package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atropos/internal/parser"
)

// TestViewReadIsMaxVisibleTS is a property test over random write
// histories: for any subset view, Read returns the value of the
// greatest-timestamp visible write to that location, falling back to the
// initial value when nothing is visible — the reconstruction function
// Σ'(r.f) of §3.1.
func TestViewReadIsMaxVisibleTS(t *testing.T) {
	prog := parser.MustParse(`table T { id: int key, n: int, }`)
	f := func(writes []uint8, visBits uint32, seed int64) bool {
		if len(writes) > 24 {
			writes = writes[:24]
		}
		rng := rand.New(rand.NewSource(seed))
		db := NewDB(prog)
		k, err := db.Load("T", Row{"id": IntV(1), "n": IntV(-7)})
		if err != nil {
			return false
		}
		// Commit one batch per write, each to the same location with a
		// random-but-recorded value.
		vals := make([]int64, len(writes))
		for i, w := range writes {
			vals[i] = int64(w) + rng.Int63n(3)
			db.Commit(&Batch{
				TS: db.NextTS(), TxnID: i, Cmd: "t.U1",
				Writes: []Write{{Table: "T", Rec: k, Field: "n", Val: IntV(vals[i])}},
			})
		}
		visible := map[int]bool{}
		for i := range writes {
			if visBits>>uint(i)&1 == 1 {
				visible[i] = true
			}
		}
		got, from := db.NewView(visible).Read("T", k, "n")
		// Reference implementation: max-TS visible write (batch IDs are
		// commit-ordered, and TS increases with ID here).
		want := int64(-7)
		wantFrom := -1
		for i := range writes {
			if visible[i] {
				want = vals[i]
				wantFrom = i
			}
		}
		return got.Equal(IntV(want)) && from == wantFrom
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestKeysMonotoneInView: growing the visible set never removes keys.
func TestKeysMonotoneInView(t *testing.T) {
	prog := parser.MustParse(`table T { id: int key, n: int, }`)
	db := NewDB(prog)
	for i := 0; i < 10; i++ {
		db.Commit(&Batch{
			TS: db.NextTS(), TxnID: i, Cmd: "t.U1",
			Writes: []Write{
				{Table: "T", Rec: MakeKey(IntV(int64(i))), Field: "n", Val: IntV(1)},
				{Table: "T", Rec: MakeKey(IntV(int64(i))), Field: "alive", Val: BoolV(true)},
			},
		})
	}
	small := map[int]bool{1: true, 3: true}
	big := map[int]bool{1: true, 3: true, 5: true, 7: true}
	ks := db.NewView(small).Keys("T")
	kb := db.NewView(big).Keys("T")
	if len(ks) >= len(kb) {
		t.Fatalf("keys not monotone: %d vs %d", len(ks), len(kb))
	}
	seen := map[Key]bool{}
	for _, k := range kb {
		seen[k] = true
	}
	for _, k := range ks {
		if !seen[k] {
			t.Fatalf("key %v lost when view grew", k)
		}
	}
}
