// Package store implements the paper's data-store semantics (§3.1): database
// states are histories of timestamped read/write events together with a
// visibility relation. Writes are grouped into record-atomic batches (all
// writes a command performs share one execution-counter value, so other
// transactions either see all of a command's writes to a record or none —
// the paper's record-level atomicity). Local views (the ⊵ relation of
// ConstructView) are subsets of committed batches; consistency models are
// expressed as view policies in package interp.
package store

import (
	"fmt"
	"strconv"

	"atropos/internal/ast"
)

// Value is a runtime value of the DSL: int, bool, or string.
type Value struct {
	T ast.Type
	I int64
	B bool
	S string
}

// IntV makes an int value.
func IntV(i int64) Value { return Value{T: ast.TInt, I: i} }

// BoolV makes a bool value.
func BoolV(b bool) Value { return Value{T: ast.TBool, B: b} }

// StringV makes a string value.
func StringV(s string) Value { return Value{T: ast.TString, S: s} }

// Zero returns the zero value of a type.
func Zero(t ast.Type) Value { return Value{T: t} }

// Equal reports value equality (values of different types are unequal).
func (v Value) Equal(o Value) bool {
	if v.T != o.T {
		return false
	}
	switch v.T {
	case ast.TInt:
		return v.I == o.I
	case ast.TBool:
		return v.B == o.B
	case ast.TString:
		return v.S == o.S
	default:
		return true
	}
}

// Less orders two values of the same type (bools: false < true).
func (v Value) Less(o Value) bool {
	switch v.T {
	case ast.TInt:
		return v.I < o.I
	case ast.TBool:
		return !v.B && o.B
	case ast.TString:
		return v.S < o.S
	default:
		return false
	}
}

func (v Value) String() string {
	switch v.T {
	case ast.TInt:
		return fmt.Sprintf("%d", v.I)
	case ast.TBool:
		return fmt.Sprintf("%t", v.B)
	case ast.TString:
		return fmt.Sprintf("%q", v.S)
	default:
		return "<invalid>"
	}
}

// Key is an encoded primary-key value tuple identifying a record within a
// table (an element of R_id).
type Key string

// MakeKey encodes a tuple of primary-key values.
func MakeKey(vals ...Value) Key {
	return Key(AppendKey(nil, vals...))
}

// AppendKey appends the encoding MakeKey(vals...) produces to buf and
// returns it; hot paths (the cluster simulator's compiled executor) reuse
// the buffer to build keys and scan prefixes without a fresh allocation
// per statement.
func AppendKey(buf []byte, vals ...Value) []byte {
	for i, v := range vals {
		if i > 0 {
			buf = append(buf, '\x1f')
		}
		switch v.T {
		case ast.TInt:
			buf = append(buf, 'i')
			buf = strconv.AppendInt(buf, v.I, 10)
		case ast.TBool:
			buf = append(buf, 'b')
			buf = strconv.AppendBool(buf, v.B)
		case ast.TString:
			buf = append(buf, 's')
			buf = append(buf, v.S...)
		default:
			buf = append(buf, '?')
		}
	}
	return buf
}

// Row is a record's field valuation (including the implicit alive field).
type Row map[string]Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// ResultRow pairs a record key with the fields a query retrieved.
type ResultRow struct {
	Key    Key
	Fields Row
}

// ResultSet is an ordered query result bound to a local variable.
type ResultSet []ResultRow
