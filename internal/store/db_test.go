package store

import (
	"testing"

	"atropos/internal/ast"
	"atropos/internal/parser"
)

func testProg(t *testing.T) *ast.Program {
	t.Helper()
	return parser.MustParse(`
table ACC { id: int key, bal: int, name: string, }
table LOG { id: int key, seq: int key, amt: int, }
`)
}

func TestLoadAndFullViewRead(t *testing.T) {
	db := NewDB(testProg(t))
	k, err := db.Load("ACC", Row{"id": IntV(1), "bal": IntV(100), "name": StringV("alice")})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	v, from := db.FullView().Read("ACC", k, "bal")
	if !v.Equal(IntV(100)) || from != -1 {
		t.Fatalf("Read = %v from %d, want 100 from initial", v, from)
	}
	if !db.FullView().Alive("ACC", k) {
		t.Fatal("loaded record not alive")
	}
}

func TestLoadErrors(t *testing.T) {
	db := NewDB(testProg(t))
	if _, err := db.Load("NOPE", Row{"id": IntV(1)}); err == nil {
		t.Error("Load on unknown table succeeded")
	}
	if _, err := db.Load("ACC", Row{"id": StringV("x")}); err == nil {
		t.Error("Load with mistyped field succeeded")
	}
}

func TestLoadFillsZeroValues(t *testing.T) {
	db := NewDB(testProg(t))
	k, err := db.Load("ACC", Row{"id": IntV(2)})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	v, _ := db.FullView().Read("ACC", k, "bal")
	if !v.Equal(IntV(0)) {
		t.Fatalf("bal = %v, want 0", v)
	}
	s, _ := db.FullView().Read("ACC", k, "name")
	if !s.Equal(StringV("")) {
		t.Fatalf("name = %v, want empty string", s)
	}
}

func TestViewSubsetRead(t *testing.T) {
	db := NewDB(testProg(t))
	k, _ := db.Load("ACC", Row{"id": IntV(1), "bal": IntV(100)})
	// Two writes to bal in timestamp order.
	b1 := &Batch{TS: db.NextTS(), TxnID: 1, Cmd: "t.U1",
		Writes: []Write{{Table: "ACC", Rec: k, Field: "bal", Val: IntV(150)}}}
	id1 := db.Commit(b1)
	b2 := &Batch{TS: db.NextTS(), TxnID: 2, Cmd: "t.U1",
		Writes: []Write{{Table: "ACC", Rec: k, Field: "bal", Val: IntV(200)}}}
	id2 := db.Commit(b2)

	full := db.FullView()
	if v, from := full.Read("ACC", k, "bal"); !v.Equal(IntV(200)) || from != id2 {
		t.Fatalf("full view read = %v from %d", v, from)
	}
	// View seeing only the first write.
	v1 := db.NewView(map[int]bool{id1: true})
	if v, from := v1.Read("ACC", k, "bal"); !v.Equal(IntV(150)) || from != id1 {
		t.Fatalf("partial view read = %v from %d", v, from)
	}
	// Empty view falls back to the initial state.
	v0 := db.NewView(map[int]bool{})
	if v, from := v0.Read("ACC", k, "bal"); !v.Equal(IntV(100)) || from != -1 {
		t.Fatalf("empty view read = %v from %d", v, from)
	}
}

func TestViewKeysIncludeBatchCreatedRecords(t *testing.T) {
	db := NewDB(testProg(t))
	k1, _ := db.Load("ACC", Row{"id": IntV(1)})
	k2 := MakeKey(IntV(2))
	b := &Batch{TS: db.NextTS(), TxnID: 1, Cmd: "t.U1", Writes: []Write{
		{Table: "ACC", Rec: k2, Field: "bal", Val: IntV(5)},
		{Table: "ACC", Rec: k2, Field: ast.AliveField, Val: BoolV(true)},
	}}
	id := db.Commit(b)
	full := db.FullView()
	keys := full.Keys("ACC")
	if len(keys) != 2 {
		t.Fatalf("keys = %v, want both records", keys)
	}
	if !full.Alive("ACC", k2) {
		t.Fatal("inserted record not alive in full view")
	}
	// A view not containing the insert does not see the record as alive.
	v0 := db.NewView(map[int]bool{})
	if v0.Alive("ACC", k2) {
		t.Fatal("inserted record alive in empty view")
	}
	_ = id
	_ = k1
}

func TestUnknownRecordReadsZero(t *testing.T) {
	db := NewDB(testProg(t))
	k := MakeKey(IntV(42))
	v, from := db.FullView().Read("ACC", k, "bal")
	if !v.Equal(IntV(0)) || from != -1 {
		t.Fatalf("read of unwritten record = %v from %d", v, from)
	}
	if db.FullView().Alive("ACC", k) {
		t.Fatal("unwritten record reports alive")
	}
}

func TestCompositeKeys(t *testing.T) {
	a := MakeKey(IntV(1), IntV(2))
	b := MakeKey(IntV(12))
	if a == b {
		t.Fatal("key encoding collides across arity")
	}
	c := MakeKey(StringV("1"), StringV("2"))
	if a == c {
		t.Fatal("key encoding collides across types")
	}
	if MakeKey(IntV(1), IntV(2)) != a {
		t.Fatal("key encoding not deterministic")
	}
}

func TestValueOrderingAndEquality(t *testing.T) {
	if !IntV(1).Less(IntV(2)) || IntV(2).Less(IntV(1)) {
		t.Error("int ordering broken")
	}
	if !BoolV(false).Less(BoolV(true)) {
		t.Error("bool ordering broken")
	}
	if !StringV("a").Less(StringV("b")) {
		t.Error("string ordering broken")
	}
	if IntV(1).Equal(BoolV(true)) {
		t.Error("cross-type equality")
	}
	if !Zero(ast.TInt).Equal(IntV(0)) {
		t.Error("zero int != 0")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{"a": IntV(1)}
	c := r.Clone()
	c["a"] = IntV(2)
	if !r["a"].Equal(IntV(1)) {
		t.Error("Clone is shallow")
	}
}

func TestReadEventsRecorded(t *testing.T) {
	db := NewDB(testProg(t))
	db.RecordRead(ReadEvent{TS: 1, TxnID: 0, Cmd: "t.S1", Table: "ACC", Rec: MakeKey(IntV(1)), Field: "bal", FromBatch: -1})
	if len(db.Reads()) != 1 {
		t.Fatalf("reads = %d", len(db.Reads()))
	}
}
