package logic

import "testing"

func TestHashStructural(t *testing.T) {
	a := AndF(P("x"), NotF(P("y")))
	b := AndF(P("x"), NotF(P("y")))
	if Hash(a) != Hash(b) {
		t.Error("equal formulas hash differently")
	}
	distinct := []Formula{
		P("x"), P("y"), NotF(P("x")), AndF(P("x"), P("y")), OrF(P("x"), P("y")),
		ImpliesF(P("x"), P("y")), ImpliesF(P("y"), P("x")), IffF(P("x"), P("y")),
		True, False, AndF(), OrF(),
	}
	seen := map[uint64]int{}
	for i, f := range distinct {
		h := Hash(f)
		if j, ok := seen[h]; ok {
			t.Errorf("formulas %d and %d collide: %s vs %s", j, i, String(distinct[j]), String(f))
		}
		seen[h] = i
	}
}

func TestFormulaHashOrderIndependent(t *testing.T) {
	build := func(order []Formula) uint64 {
		e := NewEncoder()
		e.RecordFormulaHashes()
		for _, f := range order {
			e.Assert(f)
		}
		return e.FormulaHash()
	}
	fs := []Formula{P("a"), OrF(P("b"), P("c")), ImpliesF(P("a"), P("c"))}
	fwd := build(fs)
	rev := build([]Formula{fs[2], fs[1], fs[0]})
	if fwd != rev {
		t.Error("FormulaHash depends on assertion order")
	}
	other := build([]Formula{fs[0], fs[1]})
	if other == fwd {
		t.Error("different assertion sets share a FormulaHash")
	}
	// Duplicate assertions change the multiset, so they change the digest.
	dup := build([]Formula{fs[0], fs[0], fs[1], fs[2]})
	if dup == fwd {
		t.Error("duplicated assertion not reflected in FormulaHash")
	}
}

func TestFormulaHashOptIn(t *testing.T) {
	e := NewEncoder()
	e.Assert(P("x")) // recording off: nothing accumulated
	if len(e.assertHashes) != 0 {
		t.Error("Assert recorded hashes without RecordFormulaHashes")
	}
}
