package logic

import "fmt"

// Sym is an interned proposition name: an index into an Interner's string
// table. Encoders resolve syms to solver variables by flat []int lookup,
// so the hot encode/solve path never hashes a proposition string. Sym
// values are only meaningful relative to the Interner that produced them.
type Sym int32

// Interner is a string table mapping proposition names to dense Syms.
// Interning is idempotent: the same name always returns the same Sym.
//
// Hashing contract: formula hashes (Hash/FormulaHash) digest the interned
// *strings*, never the Sym values, so two encoders that interned the same
// names in different orders — and therefore numbered them differently —
// still produce identical canonical hashes (see DESIGN.md §8).
type Interner struct {
	names []string
	index map[string]Sym
}

// NewInterner creates an empty interner.
func NewInterner() *Interner {
	return &Interner{index: map[string]Sym{}}
}

// reset empties the interner keeping its map buckets and slice capacity;
// previously returned name strings stay valid (strings are immutable), but
// previously returned Syms are meaningless afterwards.
func (in *Interner) reset() {
	in.names = in.names[:0]
	clear(in.index)
}

// Intern returns the Sym for name, assigning the next free Sym on first
// sight.
func (in *Interner) Intern(name string) Sym {
	if s, ok := in.index[name]; ok {
		return s
	}
	s := Sym(len(in.names))
	in.names = append(in.names, name)
	in.index[name] = s
	return s
}

// Internf interns a printf-formatted name (keeping vet's printf check
// effective at call sites).
func (in *Interner) Internf(format string, args ...any) Sym {
	return in.Intern(fmt.Sprintf(format, args...))
}

// Name returns the string a Sym was interned from.
func (in *Interner) Name(s Sym) string { return in.names[s] }

// Len returns the number of interned names.
func (in *Interner) Len() int { return len(in.names) }
