package logic

import "testing"

func TestEncoderCacheReuse(t *testing.T) {
	var c EncoderCache
	e1 := c.Acquire()
	e1.Var("p")
	c.Release(e1)
	e2 := c.Acquire()
	if e2 != e1 {
		t.Fatalf("expected the freelist to return the released encoder")
	}
	// The released encoder must be reset: a fresh encoder knows no syms.
	if got := e2.NameOf(e2.Sym("q")); got != "q" {
		t.Fatalf("reset encoder interned %q for q", got)
	}
	c.Release(e2)
	c.Drain()
	if len(c.free) != 0 {
		t.Fatalf("Drain left %d encoders on the freelist", len(c.free))
	}
}

func TestEncoderCacheOverflowSpills(t *testing.T) {
	var c EncoderCache
	encs := make([]*Encoder, encoderCacheCap+3)
	for i := range encs {
		encs[i] = NewEncoder()
	}
	for _, e := range encs {
		c.Release(e)
	}
	if len(c.free) != encoderCacheCap {
		t.Fatalf("freelist holds %d encoders, cap is %d", len(c.free), encoderCacheCap)
	}
}
