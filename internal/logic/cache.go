package logic

// EncoderCache is a small single-owner free list in front of the global
// encoder pool (DESIGN.md §15). sync.Pool serializes on per-P shards and
// may drop entries across GCs; under N-way detection fan-out each worker
// instead keeps a handful of encoders entirely to itself, touching the
// shared pool only on miss or overflow. The zero value is ready to use.
//
// An EncoderCache is NOT safe for concurrent use: give each worker
// goroutine its own. Encoders acquired from one cache may be released
// into another (a task can migrate workers between acquire and release) —
// ownership of the *Encoder* transfers with the value, only the cache
// struct itself is single-owner.
type EncoderCache struct {
	free []*Encoder
}

// encoderCacheCap bounds the per-worker free list; overflow spills back to
// the shared pool so idle workers do not strand encoder memory.
const encoderCacheCap = 8

// Acquire returns an encoder from the local free list, falling back to the
// shared pool. The result is indistinguishable from NewEncoder()'s.
func (c *EncoderCache) Acquire() *Encoder {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return e
	}
	return AcquireEncoder()
}

// Release resets the encoder and keeps it on the local free list, spilling
// to the shared pool when the list is full. The caller must not use the
// encoder — or anything aliasing its solver's memory — afterwards.
func (c *EncoderCache) Release(e *Encoder) {
	e.reset()
	if len(c.free) < encoderCacheCap {
		c.free = append(c.free, e)
		return
	}
	encoderPool.Put(e)
}

// Drain returns every cached encoder to the shared pool. Call it when the
// worker retires so its free list does not outlive the fan-out.
func (c *EncoderCache) Drain() {
	for i, e := range c.free {
		encoderPool.Put(e)
		c.free[i] = nil
	}
	c.free = c.free[:0]
}
