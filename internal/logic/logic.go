// Package logic provides a propositional formula layer over the CDCL SAT
// solver: named propositions, the usual connectives, Tseitin CNF
// conversion, and axiom helpers for relational encodings (strict total
// orders, transitivity) used by the anomaly detector's bounded FOL
// encoding.
//
// Propositions come in two forms: Prop carries its name as a string (the
// convenient form for tests and small formulas), Atom carries an interned
// Sym resolved against the encoder's Interner (the fast form — building
// and encoding an Atom never allocates or hashes a string). Both hash
// identically for equal names, so FormulaHash is canonical across the two
// representations (see DESIGN.md §8).
package logic

import (
	"fmt"
	"sync"

	"atropos/internal/sat"
)

// Formula is a propositional formula tree.
type Formula interface{ isFormula() }

// Prop is a named proposition.
type Prop struct{ Name string }

// Atom is an interned proposition: a Sym relative to the encoder's
// Interner. It is equivalent to Prop with the interned name — Hash and the
// encoder treat the two identically — but costs an integer where Prop
// costs a string.
type Atom struct{ S Sym }

// Not is logical negation.
type Not struct{ F Formula }

// And is n-ary conjunction (empty = true).
type And struct{ Fs []Formula }

// Or is n-ary disjunction (empty = false).
type Or struct{ Fs []Formula }

// Implies is material implication.
type Implies struct{ A, B Formula }

// Iff is logical equivalence.
type Iff struct{ A, B Formula }

// Const is a boolean constant.
type Const struct{ Val bool }

func (*Prop) isFormula()    {}
func (*Atom) isFormula()    {}
func (*Not) isFormula()     {}
func (*And) isFormula()     {}
func (*Or) isFormula()      {}
func (*Implies) isFormula() {}
func (*Iff) isFormula()     {}
func (*Const) isFormula()   {}

// P makes a named proposition from an already-built name. Use Pf to build
// the name from a printf format (keeping vet's printf check effective).
func P(name string) *Prop { return &Prop{Name: name} }

// Pf makes a named proposition from a printf format string.
func Pf(format string, args ...any) *Prop {
	return &Prop{Name: fmt.Sprintf(format, args...)}
}

// NotF negates a formula.
func NotF(f Formula) Formula { return &Not{F: f} }

// AndF conjoins formulas.
func AndF(fs ...Formula) Formula { return &And{Fs: fs} }

// OrF disjoins formulas.
func OrF(fs ...Formula) Formula { return &Or{Fs: fs} }

// ImpliesF builds a → b.
func ImpliesF(a, b Formula) Formula { return &Implies{A: a, B: b} }

// IffF builds a ↔ b.
func IffF(a, b Formula) Formula { return &Iff{A: a, B: b} }

// True and False are the boolean constants.
var (
	True  Formula = &Const{Val: true}
	False Formula = &Const{Val: false}
)

// Eval evaluates a formula under an assignment of proposition names;
// missing propositions read false. Formulas containing Atoms need EvalIn.
func Eval(f Formula, m map[string]bool) bool { return EvalIn(nil, f, m) }

// EvalIn evaluates a formula under an assignment of proposition names,
// resolving Atoms against in; missing propositions read false.
func EvalIn(in *Interner, f Formula, m map[string]bool) bool {
	switch x := f.(type) {
	case *Prop:
		return m[x.Name]
	case *Atom:
		if in == nil {
			panic("logic: EvalIn needed to evaluate an interned Atom")
		}
		return m[in.Name(x.S)]
	case *Const:
		return x.Val
	case *Not:
		return !EvalIn(in, x.F, m)
	case *And:
		for _, g := range x.Fs {
			if !EvalIn(in, g, m) {
				return false
			}
		}
		return true
	case *Or:
		for _, g := range x.Fs {
			if EvalIn(in, g, m) {
				return true
			}
		}
		return false
	case *Implies:
		return !EvalIn(in, x.A, m) || EvalIn(in, x.B, m)
	case *Iff:
		return EvalIn(in, x.A, m) == EvalIn(in, x.B, m)
	default:
		return false
	}
}

// Encoder lowers formulas into a SAT solver via Tseitin transformation,
// interning proposition names as solver variables. Syms resolve to solver
// variables by flat slice lookup; the string-keyed API (Var/Lit/Value)
// remains available and routes through the interner.
type Encoder struct {
	S  *sat.Solver
	in *Interner
	// vars maps Sym → solver variable (-1 until first encoded); atoms
	// caches one Atom node per Sym so formula construction reuses nodes.
	// Nodes are carved out of slabs (never reallocated, so the cached
	// pointers stay valid) to avoid one heap object per proposition.
	vars  []int
	atoms []*Atom
	slab  []Atom
	order []Sym // syms in solver-variable creation order
	// trueVar is a variable asserted true, used for constants.
	trueVar int
	// assertHashes records Hash(f) for every asserted formula once
	// RecordFormulaHashes opts in; FormulaHash digests them canonically
	// for the SAT-query cache (see hash.go).
	recordHashes bool
	assertHashes []uint64
	hash         uint64
	hashDirty    bool
	// scratch backs the literal lists Tseitin conversion builds, in stack
	// discipline (encode restores its frame before returning), so n-ary
	// connectives do not allocate per node.
	scratch []sat.Lit
}

// RecordFormulaHashes makes subsequent Asserts accumulate the per-formula
// hashes FormulaHash digests. Off by default so encodings that never
// consult the query cache (the fresh oracle) pay nothing.
func (e *Encoder) RecordFormulaHashes() { e.recordHashes = true }

// NewEncoder creates an encoder over a fresh solver.
func NewEncoder() *Encoder {
	e := &Encoder{S: sat.New(), in: NewInterner()}
	e.init()
	return e
}

// init asserts the shared true constant; split out so reset can replay it.
func (e *Encoder) init() {
	e.trueVar = e.S.NewVar()
	e.S.AddClause(sat.NewLit(e.trueVar, false))
}

// reset restores the encoder (and its solver and interner) to freshly
// constructed state while keeping every backing array and map bucket.
func (e *Encoder) reset() {
	e.S.Reset()
	e.in.reset()
	e.vars = e.vars[:0]
	e.atoms = e.atoms[:0]
	e.slab = e.slab[:0]
	e.order = e.order[:0]
	e.recordHashes = false
	e.assertHashes = e.assertHashes[:0]
	e.hash = 0
	e.hashDirty = false
	e.scratch = e.scratch[:0]
	e.init()
}

// encoderPool recycles encoders — and, transitively, their solvers' clause
// arenas, watch lists, and per-variable arrays — across AcquireEncoder /
// Release cycles. The anomaly detector builds one encoder per (txn,
// witness) pair and discards it with the transaction; without reuse, the
// per-variable array growth of those throwaway solvers dominated the whole
// repair pipeline's allocated bytes.
var encoderPool = sync.Pool{New: func() any { return NewEncoder() }}

// AcquireEncoder returns a pooled encoder, indistinguishable from
// NewEncoder()'s result. Release it when the encoding is no longer needed;
// letting it be garbage collected instead is safe but wastes the reuse.
func AcquireEncoder() *Encoder {
	return encoderPool.Get().(*Encoder)
}

// Release resets the encoder and returns it to the pool. The caller must
// not use the encoder — or anything aliasing its solver's memory — after
// Release. Interned name strings remain valid: strings are immutable and
// independent of the interner that produced them.
func (e *Encoder) Release() {
	e.reset()
	encoderPool.Put(e)
}

// Sym interns a proposition name.
func (e *Encoder) Sym(name string) Sym { return e.in.Intern(name) }

// Symf interns a printf-formatted proposition name.
func (e *Encoder) Symf(format string, args ...any) Sym { return e.in.Internf(format, args...) }

// NameOf returns the name a Sym was interned from.
func (e *Encoder) NameOf(s Sym) string { return e.in.Name(s) }

// Atom returns the (cached) Atom node for a Sym.
func (e *Encoder) Atom(s Sym) *Atom {
	for int(s) >= len(e.atoms) {
		e.atoms = append(e.atoms, nil)
	}
	if e.atoms[s] == nil {
		if len(e.slab) == cap(e.slab) {
			e.slab = make([]Atom, 0, 128)
		}
		e.slab = append(e.slab, Atom{S: s})
		e.atoms[s] = &e.slab[len(e.slab)-1]
	}
	return e.atoms[s]
}

// Var interns a proposition name as a solver variable.
func (e *Encoder) Var(name string) int { return e.VarS(e.in.Intern(name)) }

// VarS returns the solver variable backing a Sym, creating it on first use.
func (e *Encoder) VarS(s Sym) int {
	for int(s) >= len(e.vars) {
		e.vars = append(e.vars, -1)
	}
	if v := e.vars[s]; v >= 0 {
		return v
	}
	v := e.S.NewVar()
	e.vars[s] = v
	e.order = append(e.order, s)
	return v
}

// Lit returns the literal for a named proposition.
func (e *Encoder) Lit(name string, neg bool) sat.Lit {
	return sat.NewLit(e.Var(name), neg)
}

// LitS returns the literal for an interned proposition.
func (e *Encoder) LitS(s Sym, neg bool) sat.Lit {
	return sat.NewLit(e.VarS(s), neg)
}

// Assert adds f as a hard constraint.
func (e *Encoder) Assert(f Formula) {
	if e.recordHashes {
		e.assertHashes = append(e.assertHashes, HashIn(e.in, f))
		e.hashDirty = true
	}
	l := e.encode(f)
	e.S.AddClause(l)
}

// encode returns a literal equivalent to f, adding Tseitin definition
// clauses as needed. The scratch stack is restored before returning.
func (e *Encoder) encode(f Formula) sat.Lit {
	switch x := f.(type) {
	case *Prop:
		return sat.NewLit(e.Var(x.Name), false)
	case *Atom:
		return sat.NewLit(e.VarS(x.S), false)
	case *Const:
		return sat.NewLit(e.trueVar, !x.Val)
	case *Not:
		return e.encode(x.F).Neg()
	case *And:
		if len(x.Fs) == 0 {
			return sat.NewLit(e.trueVar, false)
		}
		if len(x.Fs) == 1 {
			return e.encode(x.Fs[0])
		}
		base := len(e.scratch)
		for _, g := range x.Fs {
			l := e.encode(g)
			e.scratch = append(e.scratch, l)
		}
		y := e.defineAnd(e.scratch[base:])
		e.scratch = e.scratch[:base]
		return y
	case *Or:
		if len(x.Fs) == 0 {
			return sat.NewLit(e.trueVar, true)
		}
		if len(x.Fs) == 1 {
			return e.encode(x.Fs[0])
		}
		base := len(e.scratch)
		for _, g := range x.Fs {
			l := e.encode(g)
			e.scratch = append(e.scratch, l)
		}
		y := e.defineOr(e.scratch[base:])
		e.scratch = e.scratch[:base]
		return y
	case *Implies:
		// a → b ≡ ¬a ∨ b, with the same clause/aux-variable structure as
		// encoding Or{Not a, b} (inlined to skip the tree nodes).
		base := len(e.scratch)
		la := e.encode(x.A).Neg()
		e.scratch = append(e.scratch, la)
		lb := e.encode(x.B)
		e.scratch = append(e.scratch, lb)
		y := e.defineOr(e.scratch[base:])
		e.scratch = e.scratch[:base]
		return y
	case *Iff:
		a := e.encode(x.A)
		b := e.encode(x.B)
		y := sat.NewLit(e.S.NewVar(), false)
		e.S.AddClause(y.Neg(), a.Neg(), b)
		e.S.AddClause(y.Neg(), a, b.Neg())
		e.S.AddClause(y, a, b)
		e.S.AddClause(y, a.Neg(), b.Neg())
		return y
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
}

// defineAnd introduces y ↔ (∧ lits) and returns y. lits may alias the
// scratch stack; the solver copies clause literals on AddClause.
func (e *Encoder) defineAnd(lits []sat.Lit) sat.Lit {
	y := sat.NewLit(e.S.NewVar(), false)
	base := len(e.scratch)
	for _, l := range lits {
		e.S.AddClause(y.Neg(), l) // y → l
		e.scratch = append(e.scratch, l.Neg())
	}
	e.scratch = append(e.scratch, y) // (∧ l) → y
	e.S.AddClause(e.scratch[base:]...)
	e.scratch = e.scratch[:base]
	return y
}

// defineOr introduces y ↔ (∨ lits) and returns y.
func (e *Encoder) defineOr(lits []sat.Lit) sat.Lit {
	y := sat.NewLit(e.S.NewVar(), false)
	base := len(e.scratch)
	for _, l := range lits {
		e.S.AddClause(l.Neg(), y) // l → y
		e.scratch = append(e.scratch, l)
	}
	e.scratch = append(e.scratch, y.Neg()) // y → (∨ l)
	e.S.AddClause(e.scratch[base:]...)
	e.scratch = e.scratch[:base]
	return y
}

// Solve checks satisfiability of the asserted constraints.
func (e *Encoder) Solve() bool { return e.S.Solve() }

// SolveAssuming checks satisfiability with extra assumption propositions
// (name, negated) that hold only for this query.
func (e *Encoder) SolveAssuming(assumps ...sat.Lit) bool { return e.S.Solve(assumps...) }

// Value reads a proposition's model value after a satisfiable Solve.
func (e *Encoder) Value(name string) bool {
	s, ok := e.in.index[name]
	return ok && e.ValueS(s)
}

// ValueS reads an interned proposition's model value after a satisfiable
// Solve.
func (e *Encoder) ValueS(s Sym) bool {
	return int(s) < len(e.vars) && e.vars[s] >= 0 && e.S.Value(e.vars[s])
}

// ModelValuesS reads the model values of a set of interned propositions
// after a satisfiable Solve, appending to dst in input order. It is the
// bulk counterpart of ValueS for model extraction: one call reads back a
// whole relation (an ord matrix row, a sort's equality atoms) without
// re-resolving names.
func (e *Encoder) ModelValuesS(dst []bool, syms ...Sym) []bool {
	for _, s := range syms {
		dst = append(dst, e.ValueS(s))
	}
	return dst
}

// ModelProps returns the names of all interned propositions that are true
// in the current model, in interning order.
func (e *Encoder) ModelProps() []string {
	var out []string
	for _, s := range e.order {
		if e.S.Value(e.vars[s]) {
			out = append(out, e.in.Name(s))
		}
	}
	return out
}

// AssertStrictTotalOrder axiomatizes the propositions name(i,j), i≠j, as a
// strict total order over n items: exactly one of name(i,j), name(j,i)
// holds, and the relation is transitive.
func (e *Encoder) AssertStrictTotalOrder(n int, name func(i, j int) string) {
	e.AssertStrictTotalOrderS(n, func(i, j int) Sym { return e.Sym(name(i, j)) })
}

// AssertStrictTotalOrderS is AssertStrictTotalOrder over interned
// propositions.
func (e *Encoder) AssertStrictTotalOrderS(n int, name func(i, j int) Sym) {
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			e.AssertIffNotS(name(i, j), name(j, i))
		}
	}
	e.AssertTransitiveS(n, name)
}

// AssertTransitive adds r(i,j) ∧ r(j,k) → r(i,k) for all distinct i,j,k.
func (e *Encoder) AssertTransitive(n int, name func(i, j int) string) {
	e.AssertTransitiveS(n, func(i, j int) Sym { return e.Sym(name(i, j)) })
}

// AssertTransitiveS is AssertTransitive over interned propositions.
func (e *Encoder) AssertTransitiveS(n int, name func(i, j int) Sym) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				e.AssertImpliesAnd2S(name(i, j), name(j, k), name(i, k))
			}
		}
	}
}

// AssertImpliesAnd2S asserts (a ∧ b) → c. It is the allocation-free fast
// path for the axiom helpers' inner loop — O(n³) assertions per relation —
// and is defined to be indistinguishable from
// Assert(ImpliesF(AndF(Atom(a), Atom(b)), Atom(c))): the same recorded
// formula hash, and the same aux-variable and clause sequence (variable
// numbering pins which model a satisfiable query returns, which the
// incremental session's replay parity depends on — DESIGN.md §7).
func (e *Encoder) AssertImpliesAnd2S(a, b, c Sym) {
	if e.recordHashes {
		h := fnvByte(fnvByte(fnvOffset, 7), 5) // Implies(And(...
		h = fnvString(fnvByte(h, 1), e.in.Name(a))
		h = fnvString(fnvByte(h, 1), e.in.Name(b))
		h = fnvByte(h, 0xfe) // ...)
		h = fnvString(fnvByte(h, 1), e.in.Name(c))
		e.assertHashes = append(e.assertHashes, h)
		e.hashDirty = true
	}
	base := len(e.scratch)
	e.scratch = append(e.scratch, sat.NewLit(e.VarS(a), false), sat.NewLit(e.VarS(b), false))
	y1 := e.defineAnd(e.scratch[base:])
	e.scratch = e.scratch[:base]
	e.scratch = append(e.scratch, y1.Neg(), sat.NewLit(e.VarS(c), false))
	y2 := e.defineOr(e.scratch[base:])
	e.scratch = e.scratch[:base]
	e.S.AddClause(y2)
}

// AssertIffNotS asserts a ↔ ¬b, indistinguishable from
// Assert(IffF(Atom(a), NotF(Atom(b)))) (see AssertImpliesAnd2S).
func (e *Encoder) AssertIffNotS(a, b Sym) {
	if e.recordHashes {
		h := fnvString(fnvByte(fnvByte(fnvOffset, 8), 1), e.in.Name(a)) // Iff(a,
		h = fnvString(fnvByte(fnvByte(h, 4), 1), e.in.Name(b))          // Not(b))
		e.assertHashes = append(e.assertHashes, h)
		e.hashDirty = true
	}
	la := sat.NewLit(e.VarS(a), false)
	lb := sat.NewLit(e.VarS(b), true)
	y := sat.NewLit(e.S.NewVar(), false)
	e.S.AddClause(y.Neg(), la.Neg(), lb)
	e.S.AddClause(y.Neg(), la, lb.Neg())
	e.S.AddClause(y, la, lb)
	e.S.AddClause(y, la.Neg(), lb.Neg())
	e.S.AddClause(y)
}

// String renders a formula for diagnostics; Atoms print as @sym (use
// StringIn to resolve their names).
func String(f Formula) string { return StringIn(nil, f) }

// StringIn renders a formula for diagnostics, resolving Atoms against in.
func StringIn(in *Interner, f Formula) string {
	switch x := f.(type) {
	case *Prop:
		return x.Name
	case *Atom:
		if in == nil {
			return fmt.Sprintf("@%d", x.S)
		}
		return in.Name(x.S)
	case *Const:
		return fmt.Sprintf("%t", x.Val)
	case *Not:
		return "!" + StringIn(in, x.F)
	case *And:
		return nary(in, "&", x.Fs)
	case *Or:
		return nary(in, "|", x.Fs)
	case *Implies:
		return "(" + StringIn(in, x.A) + " -> " + StringIn(in, x.B) + ")"
	case *Iff:
		return "(" + StringIn(in, x.A) + " <-> " + StringIn(in, x.B) + ")"
	default:
		return "?"
	}
}

func nary(in *Interner, op string, fs []Formula) string {
	s := "("
	for i, f := range fs {
		if i > 0 {
			s += " " + op + " "
		}
		s += StringIn(in, f)
	}
	return s + ")"
}
