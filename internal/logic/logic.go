// Package logic provides a propositional formula layer over the CDCL SAT
// solver: named propositions, the usual connectives, Tseitin CNF
// conversion, and axiom helpers for relational encodings (strict total
// orders, transitivity) used by the anomaly detector's bounded FOL
// encoding.
package logic

import (
	"fmt"

	"atropos/internal/sat"
)

// Formula is a propositional formula tree.
type Formula interface{ isFormula() }

// Prop is a named proposition.
type Prop struct{ Name string }

// Not is logical negation.
type Not struct{ F Formula }

// And is n-ary conjunction (empty = true).
type And struct{ Fs []Formula }

// Or is n-ary disjunction (empty = false).
type Or struct{ Fs []Formula }

// Implies is material implication.
type Implies struct{ A, B Formula }

// Iff is logical equivalence.
type Iff struct{ A, B Formula }

// Const is a boolean constant.
type Const struct{ Val bool }

func (*Prop) isFormula()    {}
func (*Not) isFormula()     {}
func (*And) isFormula()     {}
func (*Or) isFormula()      {}
func (*Implies) isFormula() {}
func (*Iff) isFormula()     {}
func (*Const) isFormula()   {}

// P makes a named proposition from an already-built name. Use Pf to build
// the name from a printf format (keeping vet's printf check effective).
func P(name string) *Prop { return &Prop{Name: name} }

// Pf makes a named proposition from a printf format string.
func Pf(format string, args ...any) *Prop {
	return &Prop{Name: fmt.Sprintf(format, args...)}
}

// NotF negates a formula.
func NotF(f Formula) Formula { return &Not{F: f} }

// AndF conjoins formulas.
func AndF(fs ...Formula) Formula { return &And{Fs: fs} }

// OrF disjoins formulas.
func OrF(fs ...Formula) Formula { return &Or{Fs: fs} }

// ImpliesF builds a → b.
func ImpliesF(a, b Formula) Formula { return &Implies{A: a, B: b} }

// IffF builds a ↔ b.
func IffF(a, b Formula) Formula { return &Iff{A: a, B: b} }

// True and False are the boolean constants.
var (
	True  Formula = &Const{Val: true}
	False Formula = &Const{Val: false}
)

// Eval evaluates a formula under an assignment of proposition names;
// missing propositions read false.
func Eval(f Formula, m map[string]bool) bool {
	switch x := f.(type) {
	case *Prop:
		return m[x.Name]
	case *Const:
		return x.Val
	case *Not:
		return !Eval(x.F, m)
	case *And:
		for _, g := range x.Fs {
			if !Eval(g, m) {
				return false
			}
		}
		return true
	case *Or:
		for _, g := range x.Fs {
			if Eval(g, m) {
				return true
			}
		}
		return false
	case *Implies:
		return !Eval(x.A, m) || Eval(x.B, m)
	case *Iff:
		return Eval(x.A, m) == Eval(x.B, m)
	default:
		return false
	}
}

// Encoder lowers formulas into a SAT solver via Tseitin transformation,
// interning proposition names as solver variables.
type Encoder struct {
	S     *sat.Solver
	names map[string]int
	order []string
	// trueVar is a variable asserted true, used for constants.
	trueVar int
	// assertHashes records Hash(f) for every asserted formula once
	// RecordFormulaHashes opts in; FormulaHash digests them canonically
	// for the SAT-query cache (see hash.go).
	recordHashes bool
	assertHashes []uint64
	hash         uint64
	hashDirty    bool
}

// RecordFormulaHashes makes subsequent Asserts accumulate the per-formula
// hashes FormulaHash digests. Off by default so encodings that never
// consult the query cache (the fresh oracle) pay nothing.
func (e *Encoder) RecordFormulaHashes() { e.recordHashes = true }

// NewEncoder creates an encoder over a fresh solver.
func NewEncoder() *Encoder {
	e := &Encoder{S: sat.New(), names: map[string]int{}}
	e.trueVar = e.S.NewVar()
	e.S.AddClause(sat.NewLit(e.trueVar, false))
	return e
}

// Var interns a proposition name as a solver variable.
func (e *Encoder) Var(name string) int {
	if v, ok := e.names[name]; ok {
		return v
	}
	v := e.S.NewVar()
	e.names[name] = v
	e.order = append(e.order, name)
	return v
}

// Lit returns the literal for a named proposition.
func (e *Encoder) Lit(name string, neg bool) sat.Lit {
	return sat.NewLit(e.Var(name), neg)
}

// Assert adds f as a hard constraint.
func (e *Encoder) Assert(f Formula) {
	if e.recordHashes {
		e.assertHashes = append(e.assertHashes, Hash(f))
		e.hashDirty = true
	}
	l := e.encode(f)
	e.S.AddClause(l)
}

// encode returns a literal equivalent to f, adding Tseitin definition
// clauses as needed.
func (e *Encoder) encode(f Formula) sat.Lit {
	switch x := f.(type) {
	case *Prop:
		return sat.NewLit(e.Var(x.Name), false)
	case *Const:
		return sat.NewLit(e.trueVar, !x.Val)
	case *Not:
		return e.encode(x.F).Neg()
	case *And:
		if len(x.Fs) == 0 {
			return sat.NewLit(e.trueVar, false)
		}
		if len(x.Fs) == 1 {
			return e.encode(x.Fs[0])
		}
		lits := make([]sat.Lit, len(x.Fs))
		for i, g := range x.Fs {
			lits[i] = e.encode(g)
		}
		y := sat.NewLit(e.S.NewVar(), false)
		// y → l_i
		long := make([]sat.Lit, 0, len(lits)+1)
		for _, l := range lits {
			e.S.AddClause(y.Neg(), l)
			long = append(long, l.Neg())
		}
		// (∧ l_i) → y
		long = append(long, y)
		e.S.AddClause(long...)
		return y
	case *Or:
		if len(x.Fs) == 0 {
			return sat.NewLit(e.trueVar, true)
		}
		if len(x.Fs) == 1 {
			return e.encode(x.Fs[0])
		}
		lits := make([]sat.Lit, len(x.Fs))
		for i, g := range x.Fs {
			lits[i] = e.encode(g)
		}
		y := sat.NewLit(e.S.NewVar(), false)
		// l_i → y
		long := make([]sat.Lit, 0, len(lits)+1)
		for _, l := range lits {
			e.S.AddClause(l.Neg(), y)
			long = append(long, l)
		}
		// y → (∨ l_i)
		long = append(long, y.Neg())
		e.S.AddClause(long...)
		return y
	case *Implies:
		return e.encode(&Or{Fs: []Formula{&Not{F: x.A}, x.B}})
	case *Iff:
		a := e.encode(x.A)
		b := e.encode(x.B)
		y := sat.NewLit(e.S.NewVar(), false)
		e.S.AddClause(y.Neg(), a.Neg(), b)
		e.S.AddClause(y.Neg(), a, b.Neg())
		e.S.AddClause(y, a, b)
		e.S.AddClause(y, a.Neg(), b.Neg())
		return y
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
}

// Solve checks satisfiability of the asserted constraints.
func (e *Encoder) Solve() bool { return e.S.Solve() }

// SolveAssuming checks satisfiability with extra assumption propositions
// (name, negated) that hold only for this query.
func (e *Encoder) SolveAssuming(assumps ...sat.Lit) bool { return e.S.Solve(assumps...) }

// Value reads a proposition's model value after a satisfiable Solve.
func (e *Encoder) Value(name string) bool {
	v, ok := e.names[name]
	return ok && e.S.Value(v)
}

// ModelProps returns the names of all interned propositions that are true
// in the current model, in interning order.
func (e *Encoder) ModelProps() []string {
	var out []string
	for _, n := range e.order {
		if e.S.Value(e.names[n]) {
			out = append(out, n)
		}
	}
	return out
}

// AssertStrictTotalOrder axiomatizes the propositions name(i,j), i≠j, as a
// strict total order over n items: exactly one of name(i,j), name(j,i)
// holds, and the relation is transitive.
func (e *Encoder) AssertStrictTotalOrder(n int, name func(i, j int) string) {
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			e.Assert(IffF(P(name(i, j)), NotF(P(name(j, i)))))
		}
	}
	e.AssertTransitive(n, name)
}

// AssertTransitive adds r(i,j) ∧ r(j,k) → r(i,k) for all distinct i,j,k.
func (e *Encoder) AssertTransitive(n int, name func(i, j int) string) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				e.Assert(ImpliesF(AndF(P(name(i, j)), P(name(j, k))), P(name(i, k))))
			}
		}
	}
}

// String renders a formula for diagnostics.
func String(f Formula) string {
	switch x := f.(type) {
	case *Prop:
		return x.Name
	case *Const:
		return fmt.Sprintf("%t", x.Val)
	case *Not:
		return "!" + String(x.F)
	case *And:
		return nary("&", x.Fs)
	case *Or:
		return nary("|", x.Fs)
	case *Implies:
		return "(" + String(x.A) + " -> " + String(x.B) + ")"
	case *Iff:
		return "(" + String(x.A) + " <-> " + String(x.B) + ")"
	default:
		return "?"
	}
}

func nary(op string, fs []Formula) string {
	s := "("
	for i, f := range fs {
		if i > 0 {
			s += " " + op + " "
		}
		s += String(f)
	}
	return s + ")"
}
