package logic

import (
	"fmt"
	"testing"
)

// Allocation-reporting microbenchmarks for the encoder: the interned-atom
// path (Sym matrices, cached Atom nodes, scratch-backed Tseitin) versus
// the convenience string path.

// BenchmarkAssertTotalOrderSyms measures the relational-axiom fast path:
// pre-interned syms, cached atoms, O(n³) transitivity assertion.
func BenchmarkAssertTotalOrderSyms(b *testing.B) {
	const n = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEncoder()
		syms := make([][]Sym, n)
		for x := 0; x < n; x++ {
			syms[x] = make([]Sym, n)
			for y := 0; y < n; y++ {
				syms[x][y] = e.Symf("o_%d_%d", x, y)
			}
		}
		e.AssertStrictTotalOrderS(n, func(x, y int) Sym { return syms[x][y] })
	}
}

// BenchmarkAssertTotalOrderStrings is the same workload through the
// string-named API: every proposition use rebuilds and re-interns its
// name (the pre-interning baseline's cost model).
func BenchmarkAssertTotalOrderStrings(b *testing.B) {
	const n = 10
	name := func(x, y int) string { return fmt.Sprintf("o_%d_%d", x, y) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEncoder()
		e.AssertStrictTotalOrder(n, name)
	}
}

// BenchmarkEncodeNestedFormula measures Tseitin conversion of a mixed
// connective tree over cached atoms.
func BenchmarkEncodeNestedFormula(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEncoder()
		syms := make([]Sym, 24)
		for j := range syms {
			syms[j] = e.Symf("p%d", j)
		}
		for j := 0; j+3 < len(syms); j++ {
			e.Assert(ImpliesF(
				AndF(e.Atom(syms[j]), e.Atom(syms[j+1])),
				OrF(e.Atom(syms[j+2]), NotF(e.Atom(syms[j+3]))),
			))
		}
		if !e.Solve() {
			b.Fatal("UNSAT")
		}
	}
}
