package logic

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestAssertSimple(t *testing.T) {
	e := NewEncoder()
	e.Assert(AndF(P("a"), NotF(P("b"))))
	if !e.Solve() {
		t.Fatal("a ∧ ¬b UNSAT")
	}
	if !e.Value("a") || e.Value("b") {
		t.Fatalf("model a=%v b=%v, want true/false", e.Value("a"), e.Value("b"))
	}
}

func TestAssertContradiction(t *testing.T) {
	e := NewEncoder()
	e.Assert(P("a"))
	e.Assert(NotF(P("a")))
	if e.Solve() {
		t.Fatal("a ∧ ¬a SAT")
	}
}

func TestConstants(t *testing.T) {
	e := NewEncoder()
	e.Assert(ImpliesF(True, P("x")))
	if !e.Solve() || !e.Value("x") {
		t.Fatal("true → x did not force x")
	}
	e2 := NewEncoder()
	e2.Assert(False)
	if e2.Solve() {
		t.Fatal("asserting false is SAT")
	}
	e3 := NewEncoder()
	e3.Assert(OrF()) // empty disjunction is false
	if e3.Solve() {
		t.Fatal("empty Or is SAT")
	}
	e4 := NewEncoder()
	e4.Assert(AndF()) // empty conjunction is true
	if !e4.Solve() {
		t.Fatal("empty And is UNSAT")
	}
}

func TestIffTruthTable(t *testing.T) {
	for _, a := range []bool{false, true} {
		for _, b := range []bool{false, true} {
			e := NewEncoder()
			e.Assert(IffF(&Const{Val: a}, &Const{Val: b}))
			want := a == b
			if got := e.Solve(); got != want {
				t.Errorf("iff(%t,%t) sat=%v want %v", a, b, got, want)
			}
		}
	}
}

// randomFormula builds a random formula over nProps propositions.
func randomFormula(rng *rand.Rand, nProps, depth int) Formula {
	if depth == 0 || rng.Intn(4) == 0 {
		return P(fmt.Sprintf("p%d", rng.Intn(nProps)))
	}
	switch rng.Intn(5) {
	case 0:
		return NotF(randomFormula(rng, nProps, depth-1))
	case 1:
		return AndF(randomFormula(rng, nProps, depth-1), randomFormula(rng, nProps, depth-1))
	case 2:
		return OrF(randomFormula(rng, nProps, depth-1), randomFormula(rng, nProps, depth-1))
	case 3:
		return ImpliesF(randomFormula(rng, nProps, depth-1), randomFormula(rng, nProps, depth-1))
	default:
		return IffF(randomFormula(rng, nProps, depth-1), randomFormula(rng, nProps, depth-1))
	}
}

// TestTseitinAgainstEval is a property test: Assert(f) is SAT iff f is
// satisfiable by enumeration, and the model returned actually satisfies f
// under direct evaluation.
func TestTseitinAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		nProps := 2 + rng.Intn(5)
		f := randomFormula(rng, nProps, 4)
		// Brute-force satisfiability.
		bruteSat := false
		for m := 0; m < 1<<nProps; m++ {
			asg := map[string]bool{}
			for i := 0; i < nProps; i++ {
				asg[fmt.Sprintf("p%d", i)] = m>>i&1 == 1
			}
			if Eval(f, asg) {
				bruteSat = true
				break
			}
		}
		e := NewEncoder()
		// Intern all props so the model is total.
		for i := 0; i < nProps; i++ {
			e.Var(fmt.Sprintf("p%d", i))
		}
		e.Assert(f)
		got := e.Solve()
		if got != bruteSat {
			t.Fatalf("iter %d: formula %s: sat=%v brute=%v", iter, String(f), got, bruteSat)
		}
		if got {
			asg := map[string]bool{}
			for i := 0; i < nProps; i++ {
				name := fmt.Sprintf("p%d", i)
				asg[name] = e.Value(name)
			}
			if !Eval(f, asg) {
				t.Fatalf("iter %d: model does not satisfy %s", iter, String(f))
			}
		}
	}
}

func TestStrictTotalOrder(t *testing.T) {
	const n = 5
	name := func(i, j int) string { return fmt.Sprintf("ord_%d_%d", i, j) }
	e := NewEncoder()
	e.AssertStrictTotalOrder(n, name)
	if !e.Solve() {
		t.Fatal("total order axioms UNSAT")
	}
	// Extract the order and verify it is a strict total order.
	before := func(i, j int) bool { return e.Value(name(i, j)) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if before(i, j) == before(j, i) {
				t.Fatalf("antisymmetry/totality violated for (%d,%d)", i, j)
			}
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				if before(i, j) && before(j, k) && !before(i, k) {
					t.Fatalf("transitivity violated: %d<%d<%d", i, j, k)
				}
			}
		}
	}
}

func TestTotalOrderWithCycleConstraintUnsat(t *testing.T) {
	const n = 3
	name := func(i, j int) string { return fmt.Sprintf("ord_%d_%d", i, j) }
	e := NewEncoder()
	e.AssertStrictTotalOrder(n, name)
	// Force a cycle 0<1, 1<2, 2<0: must be UNSAT.
	e.Assert(P(name(0, 1)))
	e.Assert(P(name(1, 2)))
	e.Assert(P(name(2, 0)))
	if e.Solve() {
		t.Fatal("cyclic order SAT under total-order axioms")
	}
}

func TestSolveAssuming(t *testing.T) {
	e := NewEncoder()
	e.Assert(OrF(P("x"), P("y")))
	if !e.SolveAssuming(e.Lit("x", true)) {
		t.Fatal("UNSAT assuming ¬x")
	}
	if !e.Value("y") {
		t.Error("y must hold assuming ¬x")
	}
	if e.SolveAssuming(e.Lit("x", true), e.Lit("y", true)) {
		t.Error("SAT assuming ¬x ∧ ¬y")
	}
	if !e.Solve() {
		t.Error("base formula no longer SAT")
	}
}

func TestModelProps(t *testing.T) {
	e := NewEncoder()
	e.Assert(P("a"))
	e.Assert(NotF(P("b")))
	e.Assert(P("c"))
	if !e.Solve() {
		t.Fatal("UNSAT")
	}
	props := e.ModelProps()
	want := map[string]bool{"a": true, "c": true}
	if len(props) != 2 {
		t.Fatalf("ModelProps = %v", props)
	}
	for _, p := range props {
		if !want[p] {
			t.Errorf("unexpected true prop %q", p)
		}
	}
}

func TestEval(t *testing.T) {
	f := ImpliesF(P("a"), AndF(P("b"), NotF(P("c"))))
	cases := []struct {
		a, b, c bool
		want    bool
	}{
		{false, false, false, true},
		{true, true, false, true},
		{true, true, true, false},
		{true, false, false, false},
	}
	for _, tc := range cases {
		m := map[string]bool{"a": tc.a, "b": tc.b, "c": tc.c}
		if got := Eval(f, m); got != tc.want {
			t.Errorf("Eval(%v) = %v, want %v", m, got, tc.want)
		}
	}
}
