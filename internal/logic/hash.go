package logic

import "sort"

// This file implements canonical formula hashing for the incremental
// anomaly-detection engine (internal/anomaly.DetectSession): two encoders
// with the same FormulaHash hold identical assertion multisets, so a SAT
// query answered on one can be reused on the other. Hashes are structural
// (FNV-1a over the formula tree) and the encoder-level digest is
// order-independent, so hash identity reflects the asserted set itself.
// Note the digest's order-independence is NOT license for callers to
// assert in arbitrary order: equal-hash encoders only return identical
// models because they also assert in the same (deterministic) order — the
// anomaly detector sorts every map iteration that feeds Assert, and the
// query cache's exchangeability contract depends on that.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	// Terminate so "ab"+"c" and "a"+"bc" differ.
	return fnvByte(h, 0xff)
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// Hash returns a structural 64-bit hash of a formula. Formulas with equal
// hashes are equal up to hash collision; connective arity and operand order
// are part of the identity. Formulas containing interned Atoms need HashIn.
func Hash(f Formula) uint64 { return hashInto(nil, fnvOffset, f) }

// HashIn is Hash with Atoms resolved against in: an Atom hashes exactly as
// a Prop of its interned name, so the digest is canonical across the two
// proposition representations and across interners that numbered the same
// names differently.
func HashIn(in *Interner, f Formula) uint64 { return hashInto(in, fnvOffset, f) }

// ChainString folds s (terminated, so consecutive strings keep distinct
// boundaries) into a running FNV-1a hash — the shared primitive for
// callers chaining identifier sequences (e.g. the anomaly session's
// query-history hashes and transaction fingerprints). Start a chain from
// ChainSeed.
func ChainString(h uint64, s string) uint64 { return fnvString(h, s) }

// ChainSeed is the initial value for a ChainString sequence.
const ChainSeed uint64 = fnvOffset

// ChainUint64 folds a 64-bit value into a ChainString-style chain (the
// anomaly session chains transaction/schema structural hashes with it).
func ChainUint64(h, v uint64) uint64 { return fnvUint64(h, v) }

func hashInto(in *Interner, h uint64, f Formula) uint64 {
	switch x := f.(type) {
	case *Prop:
		return fnvString(fnvByte(h, 1), x.Name)
	case *Atom:
		// Same tag and payload as Prop: the hash identifies the named
		// proposition, not its representation or Sym numbering.
		if in == nil {
			panic("logic: HashIn needed to hash an interned Atom")
		}
		return fnvString(fnvByte(h, 1), in.Name(x.S))
	case *Const:
		if x.Val {
			return fnvByte(h, 2)
		}
		return fnvByte(h, 3)
	case *Not:
		return hashInto(in, fnvByte(h, 4), x.F)
	case *And:
		h = fnvByte(h, 5)
		for _, g := range x.Fs {
			h = hashInto(in, h, g)
		}
		return fnvByte(h, 0xfe)
	case *Or:
		h = fnvByte(h, 6)
		for _, g := range x.Fs {
			h = hashInto(in, h, g)
		}
		return fnvByte(h, 0xfe)
	case *Implies:
		return hashInto(in, hashInto(in, fnvByte(h, 7), x.A), x.B)
	case *Iff:
		return hashInto(in, hashInto(in, fnvByte(h, 8), x.A), x.B)
	default:
		return fnvByte(h, 9)
	}
}

// FormulaHash digests every formula asserted since RecordFormulaHashes
// into a canonical 64-bit value: the multiset of per-assertion hashes is
// sorted and chained, so the digest identifies the asserted set regardless
// of assertion order. Call RecordFormulaHashes before the first Assert;
// otherwise the digest is meaningless (assertions are not retained).
func (e *Encoder) FormulaHash() uint64 {
	if !e.hashDirty {
		return e.hash
	}
	sorted := append([]uint64(nil), e.assertHashes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := fnvUint64(fnvOffset, uint64(len(sorted)))
	for _, v := range sorted {
		h = fnvUint64(h, v)
	}
	e.hash = h
	e.hashDirty = false
	return h
}
