// Package interp executes transactions against the event store following the
// paper's operational semantics (Fig. 6). Execution is small-step at the
// granularity of database commands: Step runs local control flow silently
// and performs exactly one SELECT/UPDATE/INSERT, so an external scheduler
// can interleave concurrent transaction instances arbitrarily. Each command
// observes a local view of the store supplied by a ViewPolicy — this is how
// weak consistency models (EC, causal, repeatable read) are realized.
package interp

import (
	"fmt"

	"atropos/internal/ast"
	"atropos/internal/store"
)

// Instance is a running transaction instance: the tuple (continuation,
// return expression, local store Δ) of the semantics.
type Instance struct {
	ID   int
	Txn  *ast.Txn
	Args map[string]store.Value

	prog    *ast.Program
	env     map[string]store.ResultSet
	envTab  map[string]string // var -> table, for typing empty results
	frames  []*frame
	done    bool
	retVal  store.Value
	hasRet  bool
	uuidSeq int64
	// OwnBatches are the IDs of batches this instance committed, in order.
	OwnBatches []int
	// SeenBatches accumulates every batch ID this instance has observed
	// through any of its local views (used by session-aware policies).
	SeenBatches map[int]bool
	// started marks that the first command has executed (snapshot policies).
	started bool
}

type frame struct {
	stmts []ast.Stmt
	idx   int
	// iterate bookkeeping: when body completes, restart until iterIdx ==
	// iterCount. iterIdx is 1-based during execution, matching at₁.
	isIter    bool
	iterCount int64
	iterIdx   int64
}

// NewInstance prepares an instance of txn with the given arguments
// (txn-invoke of Fig. 6). Arguments are checked against the parameter list.
func NewInstance(id int, prog *ast.Program, txn *ast.Txn, args map[string]store.Value) (*Instance, error) {
	if len(args) != len(txn.Params) {
		return nil, fmt.Errorf("interp: %s expects %d args, got %d", txn.Name, len(txn.Params), len(args))
	}
	for _, p := range txn.Params {
		v, ok := args[p.Name]
		if !ok {
			return nil, fmt.Errorf("interp: %s: missing argument %q", txn.Name, p.Name)
		}
		if v.T != p.Type {
			return nil, fmt.Errorf("interp: %s: argument %q has type %v, want %v", txn.Name, p.Name, v.T, p.Type)
		}
	}
	return &Instance{
		ID:          id,
		Txn:         txn,
		Args:        args,
		prog:        prog,
		env:         map[string]store.ResultSet{},
		envTab:      map[string]string{},
		frames:      []*frame{{stmts: txn.Body}},
		SeenBatches: map[int]bool{},
	}, nil
}

// Done reports whether the instance has finished executing.
func (in *Instance) Done() bool { return in.done }

// Result returns the transaction's return value; ok is false if the
// transaction has no return expression or has not finished.
func (in *Instance) Result() (store.Value, bool) { return in.retVal, in.hasRet && in.done }

// Started reports whether the instance has executed at least one command.
func (in *Instance) Started() bool { return in.started }

// ViewPolicy supplies the local view each database command executes under,
// realizing a consistency model.
type ViewPolicy interface {
	// View returns the local view for the instance's next command.
	View(db *store.DB, in *Instance) *store.View
	// Committed notifies the policy that the instance committed a batch.
	Committed(in *Instance, batchID int)
}

// Step advances the instance until it has executed exactly one database
// command (or finished). It returns true if the instance is still running.
func (in *Instance) Step(db *store.DB, policy ViewPolicy) (bool, error) {
	if in.done {
		return false, nil
	}
	for {
		if len(in.frames) == 0 {
			// Body exhausted: evaluate the return expression (txn-ret).
			if in.Txn.Ret != nil {
				v, err := in.eval(in.Txn.Ret, nil, db)
				if err != nil {
					return false, fmt.Errorf("interp: %s: return: %w", in.Txn.Name, err)
				}
				in.retVal, in.hasRet = v, true
			}
			in.done = true
			return false, nil
		}
		f := in.frames[len(in.frames)-1]
		if f.idx >= len(f.stmts) {
			if f.isIter && f.iterIdx < f.iterCount {
				f.iterIdx++
				f.idx = 0
				continue
			}
			in.frames = in.frames[:len(in.frames)-1]
			continue
		}
		s := f.stmts[f.idx]
		f.idx++
		switch x := s.(type) {
		case *ast.Skip:
			continue
		case *ast.If:
			v, err := in.eval(x.Cond, nil, db)
			if err != nil {
				return false, in.cmdErr("if", err)
			}
			if v.T == ast.TBool && v.B {
				in.frames = append(in.frames, &frame{stmts: x.Then})
			}
			continue
		case *ast.Iterate:
			v, err := in.eval(x.Count, nil, db)
			if err != nil {
				return false, in.cmdErr("iterate", err)
			}
			if v.T == ast.TInt && v.I > 0 {
				in.frames = append(in.frames, &frame{stmts: x.Body, isIter: true, iterCount: v.I, iterIdx: 1})
			}
			continue
		case *ast.Select:
			if err := in.execSelect(x, db, policy); err != nil {
				return false, err
			}
			return true, nil
		case *ast.Update:
			if err := in.execUpdate(x, db, policy); err != nil {
				return false, err
			}
			return true, nil
		case *ast.Insert:
			if err := in.execInsert(x, db, policy); err != nil {
				return false, err
			}
			return true, nil
		default:
			return false, fmt.Errorf("interp: %s: unknown statement %T", in.Txn.Name, s)
		}
	}
}

// Run drives the instance to completion (serial execution of the rest of
// the transaction).
func (in *Instance) Run(db *store.DB, policy ViewPolicy) error {
	for {
		more, err := in.Step(db, policy)
		if err != nil {
			return err
		}
		if !more && in.done {
			return nil
		}
	}
}

func (in *Instance) cmdErr(label string, err error) error {
	return fmt.Errorf("interp: %s.%s: %w", in.Txn.Name, label, err)
}

func (in *Instance) qualified(label string) string {
	return in.Txn.Name + "." + label
}

func (in *Instance) observe(view *store.View) {
	for _, id := range view.VisibleIDs() {
		in.SeenBatches[id] = true
	}
}

func (in *Instance) execSelect(x *ast.Select, db *store.DB, policy ViewPolicy) error {
	view := policy.View(db, in)
	in.started = true
	in.observe(view)
	ts := db.NextTS()
	schema := db.Schema(x.Table)
	if schema == nil {
		return in.cmdErr(x.Label, fmt.Errorf("unknown table %q", x.Table))
	}
	var fields []string
	if x.Star {
		for _, f := range schema.Fields {
			fields = append(fields, f.Name)
		}
	} else {
		fields = x.Fields
	}
	var rs store.ResultSet
	for _, key := range view.Keys(x.Table) {
		if !view.Alive(x.Table, key) {
			continue
		}
		row := view.Row(x.Table, key)
		match, err := in.evalWhere(x.Where, row, db)
		if err != nil {
			return in.cmdErr(x.Label, err)
		}
		if !match {
			continue
		}
		out := store.Row{}
		for _, fn := range fields {
			val, from := view.Read(x.Table, key, fn)
			out[fn] = val
			db.RecordRead(store.ReadEvent{
				TS: ts, TxnID: in.ID, Cmd: in.qualified(x.Label),
				Table: x.Table, Rec: key, Field: fn, Val: val, FromBatch: from,
			})
		}
		rs = append(rs, store.ResultRow{Key: key, Fields: out})
	}
	in.env[x.Var] = rs
	in.envTab[x.Var] = x.Table
	return nil
}

func (in *Instance) execUpdate(x *ast.Update, db *store.DB, policy ViewPolicy) error {
	view := policy.View(db, in)
	in.started = true
	in.observe(view)
	ts := db.NextTS()
	// Evaluate the assigned expressions once (they cannot reference this.f).
	vals := make([]store.Value, len(x.Sets))
	for i, a := range x.Sets {
		v, err := in.eval(a.Expr, nil, db)
		if err != nil {
			return in.cmdErr(x.Label, err)
		}
		vals[i] = v
	}
	b := &store.Batch{TS: ts, TxnID: in.ID, Cmd: in.qualified(x.Label), Deps: view.VisibleIDs()}
	for _, key := range view.Keys(x.Table) {
		if !view.Alive(x.Table, key) {
			continue
		}
		row := view.Row(x.Table, key)
		match, err := in.evalWhere(x.Where, row, db)
		if err != nil {
			return in.cmdErr(x.Label, err)
		}
		if !match {
			continue
		}
		for i, a := range x.Sets {
			b.Writes = append(b.Writes, store.Write{Table: x.Table, Rec: key, Field: a.Field, Val: vals[i]})
		}
	}
	if len(b.Writes) > 0 {
		id := db.Commit(b)
		in.OwnBatches = append(in.OwnBatches, id)
		policy.Committed(in, id)
	}
	return nil
}

func (in *Instance) execInsert(x *ast.Insert, db *store.DB, policy ViewPolicy) error {
	view := policy.View(db, in)
	in.started = true
	in.observe(view)
	ts := db.NextTS()
	schema := db.Schema(x.Table)
	if schema == nil {
		return in.cmdErr(x.Label, fmt.Errorf("unknown table %q", x.Table))
	}
	row := store.Row{}
	for _, a := range x.Values {
		v, err := in.eval(a.Expr, nil, db)
		if err != nil {
			return in.cmdErr(x.Label, err)
		}
		row[a.Field] = v
	}
	var pkVals []store.Value
	for _, pk := range schema.PrimaryKey() {
		v, ok := row[pk.Name]
		if !ok {
			return in.cmdErr(x.Label, fmt.Errorf("insert misses primary-key field %q", pk.Name))
		}
		pkVals = append(pkVals, v)
	}
	key := store.MakeKey(pkVals...)
	b := &store.Batch{TS: ts, TxnID: in.ID, Cmd: in.qualified(x.Label), Deps: view.VisibleIDs()}
	for f, v := range row {
		b.Writes = append(b.Writes, store.Write{Table: x.Table, Rec: key, Field: f, Val: v})
	}
	b.Writes = append(b.Writes, store.Write{Table: x.Table, Rec: key, Field: ast.AliveField, Val: store.BoolV(true)})
	id := db.Commit(b)
	in.OwnBatches = append(in.OwnBatches, id)
	policy.Committed(in, id)
	return nil
}

// evalWhere evaluates φ with this bound to row.
func (in *Instance) evalWhere(w ast.Expr, row store.Row, db *store.DB) (bool, error) {
	if w == nil {
		return false, fmt.Errorf("missing where clause")
	}
	v, err := in.evalIn(w, row, nil, db)
	if err != nil {
		return false, err
	}
	return v.T == ast.TBool && v.B, nil
}

// eval evaluates e outside a where clause.
func (in *Instance) eval(e ast.Expr, this store.Row, db *store.DB) (store.Value, error) {
	return in.evalIn(e, this, nil, db)
}

func (in *Instance) evalIn(e ast.Expr, this store.Row, _ any, db *store.DB) (store.Value, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return store.IntV(x.Val), nil
	case *ast.BoolLit:
		return store.BoolV(x.Val), nil
	case *ast.StringLit:
		return store.StringV(x.Val), nil
	case *ast.UUID:
		// uuid() values are scoped per transaction instance so that
		// corresponding executions of an original and a refactored program
		// (same instance IDs, same schedule) draw identical identifiers —
		// the renaming-free refinement the containment checker compares.
		in.uuidSeq++
		return store.IntV(-(int64(in.ID+1)<<20 + in.uuidSeq)), nil
	case *ast.Arg:
		v, ok := in.Args[x.Name]
		if !ok {
			return store.Value{}, fmt.Errorf("unknown argument %q", x.Name)
		}
		return v, nil
	case *ast.IterVar:
		for i := len(in.frames) - 1; i >= 0; i-- {
			if in.frames[i].isIter {
				return store.IntV(in.frames[i].iterIdx), nil
			}
		}
		return store.Value{}, fmt.Errorf("iter outside iterate")
	case *ast.ThisField:
		if this == nil {
			return store.Value{}, fmt.Errorf("this.%s outside where clause", x.Field)
		}
		v, ok := this[x.Field]
		if !ok {
			return store.Value{}, fmt.Errorf("record has no field %q", x.Field)
		}
		return v, nil
	case *ast.FieldAt:
		rs := in.env[x.Var]
		idx := int64(1)
		if x.Index != nil {
			iv, err := in.evalIn(x.Index, this, nil, db)
			if err != nil {
				return store.Value{}, err
			}
			if iv.T != ast.TInt {
				return store.Value{}, fmt.Errorf("at-index is not an int")
			}
			idx = iv.I
		}
		if idx < 1 || idx > int64(len(rs)) {
			return in.zeroOf(x.Var, x.Field, db)
		}
		v, ok := rs[idx-1].Fields[x.Field]
		if !ok {
			return store.Value{}, fmt.Errorf("result %q has no field %q", x.Var, x.Field)
		}
		return v, nil
	case *ast.Agg:
		return in.evalAgg(x, db)
	case *ast.Binary:
		return in.evalBinary(x, this, db)
	default:
		return store.Value{}, fmt.Errorf("unknown expression %T", e)
	}
}

// zeroOf returns the zero value of the field's declared type when an at
// access misses (empty result set): the semantics of reading a record that
// conceptually exists with default field values.
func (in *Instance) zeroOf(varName, field string, db *store.DB) (store.Value, error) {
	tab := in.envTab[varName]
	if tab == "" {
		return store.Value{}, fmt.Errorf("unknown variable %q", varName)
	}
	s := db.Schema(tab)
	if s == nil {
		return store.Value{}, fmt.Errorf("unknown table %q", tab)
	}
	f := s.Field(field)
	if f == nil {
		return store.Value{}, fmt.Errorf("table %s has no field %q", tab, field)
	}
	return store.Zero(f.Type), nil
}

func (in *Instance) evalAgg(x *ast.Agg, db *store.DB) (store.Value, error) {
	rs, ok := in.env[x.Var]
	if !ok {
		if _, bound := in.envTab[x.Var]; !bound {
			return store.Value{}, fmt.Errorf("unknown variable %q", x.Var)
		}
	}
	if x.Fn == ast.AggCount {
		return store.IntV(int64(len(rs))), nil
	}
	if len(rs) == 0 {
		if x.Fn == ast.AggSum {
			return store.IntV(0), nil
		}
		return in.zeroOf(x.Var, x.Field, db)
	}
	first, ok := rs[0].Fields[x.Field]
	if !ok {
		return store.Value{}, fmt.Errorf("result %q has no field %q", x.Var, x.Field)
	}
	switch x.Fn {
	case ast.AggAny:
		return first, nil
	case ast.AggSum:
		var total int64
		for _, r := range rs {
			total += r.Fields[x.Field].I
		}
		return store.IntV(total), nil
	case ast.AggMin, ast.AggMax:
		best := first
		for _, r := range rs[1:] {
			v := r.Fields[x.Field]
			if (x.Fn == ast.AggMin && v.Less(best)) || (x.Fn == ast.AggMax && best.Less(v)) {
				best = v
			}
		}
		return best, nil
	default:
		return store.Value{}, fmt.Errorf("unknown aggregator %v", x.Fn)
	}
}

func (in *Instance) evalBinary(x *ast.Binary, this store.Row, db *store.DB) (store.Value, error) {
	l, err := in.evalIn(x.L, this, nil, db)
	if err != nil {
		return store.Value{}, err
	}
	// Short-circuit logical operators.
	if x.Op == ast.OpAnd && l.T == ast.TBool && !l.B {
		return store.BoolV(false), nil
	}
	if x.Op == ast.OpOr && l.T == ast.TBool && l.B {
		return store.BoolV(true), nil
	}
	r, err := in.evalIn(x.R, this, nil, db)
	if err != nil {
		return store.Value{}, err
	}
	switch {
	case x.Op.IsArith():
		if l.T != ast.TInt || r.T != ast.TInt {
			return store.Value{}, fmt.Errorf("arithmetic %s on non-int operands", x.Op)
		}
		switch x.Op {
		case ast.OpAdd:
			return store.IntV(l.I + r.I), nil
		case ast.OpSub:
			return store.IntV(l.I - r.I), nil
		case ast.OpMul:
			return store.IntV(l.I * r.I), nil
		default:
			if r.I == 0 {
				return store.Value{}, fmt.Errorf("division by zero")
			}
			return store.IntV(l.I / r.I), nil
		}
	case x.Op.IsComparison():
		switch x.Op {
		case ast.OpEq:
			return store.BoolV(l.Equal(r)), nil
		case ast.OpNe:
			return store.BoolV(!l.Equal(r)), nil
		case ast.OpLt:
			return store.BoolV(l.Less(r)), nil
		case ast.OpLe:
			return store.BoolV(l.Less(r) || l.Equal(r)), nil
		case ast.OpGt:
			return store.BoolV(r.Less(l)), nil
		default:
			return store.BoolV(r.Less(l) || l.Equal(r)), nil
		}
	default:
		if l.T != ast.TBool || r.T != ast.TBool {
			return store.Value{}, fmt.Errorf("logical %s on non-bool operands", x.Op)
		}
		if x.Op == ast.OpAnd {
			return store.BoolV(l.B && r.B), nil
		}
		return store.BoolV(l.B || r.B), nil
	}
}
