package interp

import (
	"math/rand"
	"testing"

	"atropos/internal/ast"
	"atropos/internal/parser"
	"atropos/internal/sema"
	"atropos/internal/store"
)

const bankSrc = `
table ACC { id: int key, bal: int, }

txn deposit(k: int, amt: int) {
  x := select bal from ACC where id = k;
  update ACC set bal = x.bal + amt where id = k;
  return x.bal + amt;
}

txn balance(k: int) {
  x := select bal from ACC where id = k;
  return x.bal;
}

txn openAcc(k: int) {
  insert into ACC values (id = k, bal = 0);
}
`

func mustProg(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sema.Check(p); err != nil {
		t.Fatalf("sema: %v", err)
	}
	return p
}

func TestSerialDeposit(t *testing.T) {
	prog := mustProg(t, bankSrc)
	db := store.NewDB(prog)
	if _, err := db.Load("ACC", store.Row{"id": store.IntV(1), "bal": store.IntV(100)}); err != nil {
		t.Fatal(err)
	}
	res, err := RunSerial(prog, db, []Call{
		{Txn: "deposit", Args: map[string]store.Value{"k": store.IntV(1), "amt": store.IntV(50)}},
		{Txn: "balance", Args: map[string]store.Value{"k": store.IntV(1)}},
	})
	if err != nil {
		t.Fatalf("RunSerial: %v", err)
	}
	if !res[0].Equal(store.IntV(150)) {
		t.Errorf("deposit returned %v, want 150", res[0])
	}
	if !res[1].Equal(store.IntV(150)) {
		t.Errorf("balance returned %v, want 150", res[1])
	}
}

func TestInsertThenSelect(t *testing.T) {
	prog := mustProg(t, bankSrc)
	db := store.NewDB(prog)
	_, err := RunSerial(prog, db, []Call{
		{Txn: "openAcc", Args: map[string]store.Value{"k": store.IntV(7)}},
		{Txn: "deposit", Args: map[string]store.Value{"k": store.IntV(7), "amt": store.IntV(5)}},
	})
	if err != nil {
		t.Fatalf("RunSerial: %v", err)
	}
	res, err := RunSerial(prog, db, []Call{{Txn: "balance", Args: map[string]store.Value{"k": store.IntV(7)}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Equal(store.IntV(5)) {
		t.Errorf("balance = %v, want 5", res[0])
	}
}

func TestLostUpdateUnderEC(t *testing.T) {
	// Two concurrent deposits under EC must, for some seed, both read the
	// initial balance and overwrite one another — the lost-update anomaly of
	// Fig. 2 (right). Under serial execution the total is always preserved.
	prog := mustProg(t, bankSrc)
	lost := false
	for seed := int64(0); seed < 40 && !lost; seed++ {
		db := store.NewDB(prog)
		if _, err := db.Load("ACC", store.Row{"id": store.IntV(1), "bal": store.IntV(0)}); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		policy := &ECPolicy{Rng: rng}
		_, err := RunConcurrent(prog, db, policy, []Call{
			{Txn: "deposit", Args: map[string]store.Value{"k": store.IntV(1), "amt": store.IntV(10)}},
			{Txn: "deposit", Args: map[string]store.Value{"k": store.IntV(1), "amt": store.IntV(10)}},
		}, rng)
		if err != nil {
			t.Fatalf("RunConcurrent: %v", err)
		}
		v, _ := db.FullView().Read("ACC", store.MakeKey(store.IntV(1)), "bal")
		if v.I < 20 {
			lost = true
		}
	}
	if !lost {
		t.Error("no lost update observed under EC across 40 seeds; policy too strong")
	}
}

func TestSerialNeverLosesUpdates(t *testing.T) {
	prog := mustProg(t, bankSrc)
	db := store.NewDB(prog)
	if _, err := db.Load("ACC", store.Row{"id": store.IntV(1), "bal": store.IntV(0)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := RunSerial(prog, db, []Call{
			{Txn: "deposit", Args: map[string]store.Value{"k": store.IntV(1), "amt": store.IntV(10)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := db.FullView().Read("ACC", store.MakeKey(store.IntV(1)), "bal")
	if v.I != 100 {
		t.Errorf("balance = %d, want 100", v.I)
	}
}

func TestIterateAndIf(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn fill(base: int, cnt: int) {
  iterate (cnt) {
    insert into T values (id = base + iter, n = iter);
  }
}
txn sumAll(lo: int, hi: int) {
  x := select n from T where id >= lo && id <= hi;
  if (count(x.n) > 0) {
    update T set n = 0 where id = lo + 1;
  }
  return sum(x.n);
}
`
	prog := mustProg(t, src)
	db := store.NewDB(prog)
	res, err := RunSerial(prog, db, []Call{
		{Txn: "fill", Args: map[string]store.Value{"base": store.IntV(100), "cnt": store.IntV(4)}},
		{Txn: "sumAll", Args: map[string]store.Value{"lo": store.IntV(100), "hi": store.IntV(200)}},
	})
	if err != nil {
		t.Fatalf("RunSerial: %v", err)
	}
	// iter is 1-based: records n=1..4, sum=10.
	if !res[1].Equal(store.IntV(10)) {
		t.Errorf("sum = %v, want 10", res[1])
	}
	// The if's update fired: record 101's n is zero now.
	v, _ := db.FullView().Read("T", store.MakeKey(store.IntV(101)), "n")
	if v.I != 0 {
		t.Errorf("n(101) = %d, want 0", v.I)
	}
}

func TestAtIndexAccess(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn second(lo: int) {
  x := select n from T where id >= lo;
  return x.n[2];
}
`
	prog := mustProg(t, src)
	db := store.NewDB(prog)
	for i := int64(1); i <= 3; i++ {
		if _, err := db.Load("T", store.Row{"id": store.IntV(i), "n": store.IntV(i * 11)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := RunSerial(prog, db, []Call{{Txn: "second", Args: map[string]store.Value{"lo": store.IntV(0)}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Equal(store.IntV(22)) {
		t.Errorf("x.n[2] = %v, want 22 (keys sorted)", res[0])
	}
}

func TestEmptyResultReadsZero(t *testing.T) {
	prog := mustProg(t, bankSrc)
	db := store.NewDB(prog)
	res, err := RunSerial(prog, db, []Call{{Txn: "balance", Args: map[string]store.Value{"k": store.IntV(99)}}})
	if err != nil {
		t.Fatalf("RunSerial: %v", err)
	}
	if !res[0].Equal(store.IntV(0)) {
		t.Errorf("balance of missing account = %v, want 0", res[0])
	}
}

func TestAggregators(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn stats(lo: int) {
  x := select n from T where id >= lo;
  return min(x.n) + max(x.n) * 1000 + count(x.n) * 1000000;
}
`
	prog := mustProg(t, src)
	db := store.NewDB(prog)
	for i, n := range []int64{5, 2, 9} {
		if _, err := db.Load("T", store.Row{"id": store.IntV(int64(i)), "n": store.IntV(n)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := RunSerial(prog, db, []Call{{Txn: "stats", Args: map[string]store.Value{"lo": store.IntV(0)}}})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 + 9*1000 + 3*1000000)
	if res[0].I != want {
		t.Errorf("stats = %d, want %d", res[0].I, want)
	}
}

func TestUUIDInsertFreshRows(t *testing.T) {
	src := `
table LOG { k: int key, lid: int key, v: int, }
txn log(k: int, v: int) {
  insert into LOG values (k = k, lid = uuid(), v = v);
}
txn total(k: int) {
  x := select v from LOG where k = k;
  return sum(x.v);
}
`
	prog := mustProg(t, src)
	db := store.NewDB(prog)
	calls := []Call{
		{Txn: "log", Args: map[string]store.Value{"k": store.IntV(1), "v": store.IntV(3)}},
		{Txn: "log", Args: map[string]store.Value{"k": store.IntV(1), "v": store.IntV(4)}},
		{Txn: "total", Args: map[string]store.Value{"k": store.IntV(1)}},
	}
	res, err := RunSerial(prog, db, calls)
	if err != nil {
		t.Fatal(err)
	}
	if !res[2].Equal(store.IntV(7)) {
		t.Errorf("total = %v, want 7 (two distinct log rows)", res[2])
	}
}

func TestInstanceArgChecking(t *testing.T) {
	prog := mustProg(t, bankSrc)
	txn := prog.Txn("deposit")
	if _, err := NewInstance(0, prog, txn, map[string]store.Value{"k": store.IntV(1)}); err == nil {
		t.Error("missing argument accepted")
	}
	if _, err := NewInstance(0, prog, txn, map[string]store.Value{"k": store.IntV(1), "amt": store.StringV("x")}); err == nil {
		t.Error("mistyped argument accepted")
	}
}

func TestRRPolicySnapshotStable(t *testing.T) {
	// Under RR, a transaction that reads the same record twice sees the same
	// value even if another transaction commits in between.
	src := `
table T { id: int key, n: int, }
txn readTwice(k: int) {
  x := select n from T where id = k;
  y := select n from T where id = k;
  return x.n * 1000 + y.n;
}
txn bump(k: int) {
  update T set n = 99 where id = k;
}
`
	prog := mustProg(t, src)
	db := store.NewDB(prog)
	if _, err := db.Load("T", store.Row{"id": store.IntV(1), "n": store.IntV(7)}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pol := &RRPolicy{Rng: rng}
	reader, err := NewInstance(0, prog, prog.Txn("readTwice"), map[string]store.Value{"k": store.IntV(1)})
	if err != nil {
		t.Fatal(err)
	}
	// First read fixes the snapshot.
	if _, err := reader.Step(db, pol); err != nil {
		t.Fatal(err)
	}
	// Concurrent bump commits.
	bumper, err := NewInstance(1, prog, prog.Txn("bump"), map[string]store.Value{"k": store.IntV(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := bumper.Run(db, SerializablePolicy{}); err != nil {
		t.Fatal(err)
	}
	// Second read must not see it.
	if err := reader.Run(db, pol); err != nil {
		t.Fatal(err)
	}
	v, _ := reader.Result()
	if v.I != 7007 {
		t.Errorf("readTwice = %d, want 7007 (same value twice)", v.I)
	}
}

func TestCausalPolicyClosesDeps(t *testing.T) {
	// A causal view that includes a dependent batch must include its
	// dependencies: with P=0 nothing foreign is visible unless pulled in by
	// session monotonicity; with P=1 everything is.
	prog := mustProg(t, bankSrc)
	db := store.NewDB(prog)
	if _, err := db.Load("ACC", store.Row{"id": store.IntV(1), "bal": store.IntV(0)}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := RunConcurrent(prog, db, &CausalPolicy{Rng: rng, P: 1.0}, []Call{
		{Txn: "deposit", Args: map[string]store.Value{"k": store.IntV(1), "amt": store.IntV(10)}},
		{Txn: "deposit", Args: map[string]store.Value{"k": store.IntV(1), "amt": store.IntV(10)}},
	}, rng); err != nil {
		t.Fatal(err)
	}
	// With P=1 every command saw everything committed so far; the outcome
	// depends on interleaving but the store must remain well formed.
	if db.NumBatches() != 2 {
		t.Fatalf("batches = %d, want 2", db.NumBatches())
	}
	for _, b := range db.Batches() {
		for _, d := range b.Deps {
			if d >= b.ID {
				t.Errorf("batch %d depends on later batch %d", b.ID, d)
			}
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn div(k: int) {
  x := select n from T where id = k;
  return 10 / x.n;
}
`
	prog := mustProg(t, src)
	db := store.NewDB(prog)
	if _, err := db.Load("T", store.Row{"id": store.IntV(1), "n": store.IntV(0)}); err != nil {
		t.Fatal(err)
	}
	_, err := RunSerial(prog, db, []Call{{Txn: "div", Args: map[string]store.Value{"k": store.IntV(1)}}})
	if err == nil {
		t.Error("division by zero not reported")
	}
}

func TestDeleteHidesRecords(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn drop(k: int) {
  delete from T where id = k;
}
txn countAll(lo: int) {
  x := select n from T where id >= lo;
  return count(x.n);
}
txn revive(k: int, v: int) {
  insert into T values (id = k, n = v);
}
`
	prog := mustProg(t, src)
	db := store.NewDB(prog)
	for i := int64(0); i < 3; i++ {
		if _, err := db.Load("T", store.Row{"id": store.IntV(i), "n": store.IntV(i)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := RunSerial(prog, db, []Call{
		{Txn: "countAll", Args: map[string]store.Value{"lo": store.IntV(0)}},
		{Txn: "drop", Args: map[string]store.Value{"k": store.IntV(1)}},
		{Txn: "countAll", Args: map[string]store.Value{"lo": store.IntV(0)}},
		{Txn: "revive", Args: map[string]store.Value{"k": store.IntV(1), "v": store.IntV(42)}},
		{Txn: "countAll", Args: map[string]store.Value{"lo": store.IntV(0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].I != 3 || res[2].I != 2 || res[4].I != 3 {
		t.Fatalf("counts = %d, %d, %d; want 3, 2, 3 (delete then re-insert)", res[0].I, res[2].I, res[4].I)
	}
}
