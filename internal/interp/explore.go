package interp

import (
	"fmt"
	"math/rand"

	"atropos/internal/ast"
	"atropos/internal/store"
)

// Call names a transaction invocation for the exploration harness.
type Call struct {
	Txn  string
	Args map[string]store.Value
}

// RunSerial executes the calls one after another under full views: a
// serializable reference execution. It returns the per-call results.
func RunSerial(prog *ast.Program, db *store.DB, calls []Call) ([]store.Value, error) {
	var results []store.Value
	pol := SerializablePolicy{}
	for i, c := range calls {
		txn := prog.Txn(c.Txn)
		if txn == nil {
			return nil, fmt.Errorf("interp: unknown transaction %q", c.Txn)
		}
		in, err := NewInstance(i, prog, txn, c.Args)
		if err != nil {
			return nil, err
		}
		if err := in.Run(db, pol); err != nil {
			return nil, err
		}
		v, _ := in.Result()
		results = append(results, v)
	}
	return results, nil
}

// RunConcurrent interleaves the calls under the given view policy with a
// uniformly random scheduler: at each step a random unfinished instance
// executes one database command. It returns the finished instances.
func RunConcurrent(prog *ast.Program, db *store.DB, policy ViewPolicy, calls []Call, rng *rand.Rand) ([]*Instance, error) {
	instances := make([]*Instance, len(calls))
	for i, c := range calls {
		txn := prog.Txn(c.Txn)
		if txn == nil {
			return nil, fmt.Errorf("interp: unknown transaction %q", c.Txn)
		}
		in, err := NewInstance(i, prog, txn, c.Args)
		if err != nil {
			return nil, err
		}
		instances[i] = in
	}
	live := make([]*Instance, len(instances))
	copy(live, instances)
	for len(live) > 0 {
		i := rng.Intn(len(live))
		in := live[i]
		_, err := in.Step(db, policy)
		if err != nil {
			return nil, err
		}
		if in.Done() {
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return instances, nil
}
