package interp

import (
	"math/rand"

	"atropos/internal/store"
)

// This file defines the local-view policies that realize the consistency
// models of the paper's evaluation: SC (serializable/full views), EC
// (arbitrary subsets of committed batches — the ConstructView relation with
// no further constraints), CC (causally closed subsets), and RR (a snapshot
// fixed at the transaction's first command).
//
// All weak policies always include the instance's own committed batches:
// losing one's own session writes makes essentially every program
// vacuously anomalous and is not exhibited by real EC stores (they are
// sticky-available). The adversarial choice is over *other* transactions'
// batches.

// SerializablePolicy gives every command the full, up-to-date view. Combined
// with a serial (non-interleaved) schedule this yields serializable
// executions; interleaved it models single-copy linearizable reads.
type SerializablePolicy struct{}

// View implements ViewPolicy.
func (SerializablePolicy) View(db *store.DB, _ *Instance) *store.View { return db.FullView() }

// Committed implements ViewPolicy.
func (SerializablePolicy) Committed(*Instance, int) {}

// ECPolicy models eventual consistency: each command sees an arbitrary
// subset of committed batches, chosen at random with probability P per
// batch (plus the instance's own batches).
type ECPolicy struct {
	Rng *rand.Rand
	// P is the probability a foreign batch is visible; 0 defaults to 0.5.
	P float64
}

// View implements ViewPolicy.
func (p *ECPolicy) View(db *store.DB, in *Instance) *store.View {
	prob := p.P
	if prob == 0 {
		prob = 0.5
	}
	visible := map[int]bool{}
	for _, b := range db.Batches() {
		if b.TxnID == in.ID || p.Rng.Float64() < prob {
			visible[b.ID] = true
		}
	}
	return db.NewView(visible)
}

// Committed implements ViewPolicy.
func (p *ECPolicy) Committed(*Instance, int) {}

// CausalPolicy models causal consistency: views are random subsets closed
// under the batches' dependency edges (a batch is visible only if everything
// it causally depends on is visible), and monotonically growing per session:
// once an instance has seen a batch, later commands keep seeing it.
type CausalPolicy struct {
	Rng *rand.Rand
	P   float64
}

// View implements ViewPolicy.
func (p *CausalPolicy) View(db *store.DB, in *Instance) *store.View {
	prob := p.P
	if prob == 0 {
		prob = 0.5
	}
	visible := map[int]bool{}
	for _, b := range db.Batches() {
		if b.TxnID == in.ID || in.SeenBatches[b.ID] || p.Rng.Float64() < prob {
			visible[b.ID] = true
		}
	}
	// Close under dependencies: iterate until fixpoint (dependencies have
	// smaller IDs, so one backward pass suffices).
	batches := db.Batches()
	for i := len(batches) - 1; i >= 0; i-- {
		if !visible[i] {
			continue
		}
		for _, d := range batches[i].Deps {
			visible[d] = true
		}
	}
	return db.NewView(visible)
}

// Committed implements ViewPolicy.
func (p *CausalPolicy) Committed(*Instance, int) {}

// RRPolicy models the paper's repeatable read: results of transactions that
// commit after an executing transaction has begun reading do not become
// visible to it. The first command fixes a random snapshot; subsequent
// commands reuse it (extended only with the instance's own batches).
type RRPolicy struct {
	Rng *rand.Rand
	P   float64

	snapshots map[int]map[int]bool
}

// View implements ViewPolicy.
func (p *RRPolicy) View(db *store.DB, in *Instance) *store.View {
	if p.snapshots == nil {
		p.snapshots = map[int]map[int]bool{}
	}
	snap, ok := p.snapshots[in.ID]
	if !ok {
		prob := p.P
		if prob == 0 {
			prob = 0.5
		}
		snap = map[int]bool{}
		for _, b := range db.Batches() {
			if b.TxnID == in.ID || p.Rng.Float64() < prob {
				snap[b.ID] = true
			}
		}
		p.snapshots[in.ID] = snap
	}
	// Own batches committed since the snapshot are always visible.
	visible := map[int]bool{}
	for id := range snap {
		visible[id] = true
	}
	for _, id := range in.OwnBatches {
		visible[id] = true
	}
	return db.NewView(visible)
}

// Committed implements ViewPolicy.
func (p *RRPolicy) Committed(*Instance, int) {}
