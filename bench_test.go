// Benchmarks regenerating each table and figure of the paper (short
// configurations; the full-scale runs are `atropos-exp`, see EXPERIMENTS.md
// and DESIGN.md §5 for the experiment index).
package atropos_test

import (
	"context"
	"testing"
	"time"

	"atropos"
	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/cluster"
	"atropos/internal/exp"
	"atropos/internal/repair"
)

// --- Table 1: static analysis and repair per benchmark ---

func benchTable1(b *testing.B, name string) {
	bench := benchmarks.ByName(name)
	prog, err := bench.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Detection parallelism pinned to 1: these benchmarks are
		// alloc-gated, and only the sequential path allocates identically
		// on every machine (worker fan-out scales with the width).
		if _, err := repair.RepairWith(prog, anomaly.EC, repair.Options{Incremental: true, Parallelism: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_TPCC(b *testing.B)       { benchTable1(b, "TPC-C") }
func BenchmarkTable1_SEATS(b *testing.B)      { benchTable1(b, "SEATS") }
func BenchmarkTable1_Courseware(b *testing.B) { benchTable1(b, "Courseware") }
func BenchmarkTable1_SmallBank(b *testing.B)  { benchTable1(b, "SmallBank") }
func BenchmarkTable1_Twitter(b *testing.B)    { benchTable1(b, "Twitter") }
func BenchmarkTable1_FMKe(b *testing.B)       { benchTable1(b, "FMKe") }
func BenchmarkTable1_SIBench(b *testing.B)    { benchTable1(b, "SIBench") }
func BenchmarkTable1_Wikipedia(b *testing.B)  { benchTable1(b, "Wikipedia") }
func BenchmarkTable1_Killrchat(b *testing.B)  { benchTable1(b, "Killrchat") }

// --- Table 1 corpus pipeline: sequential vs parallel engine ---
//
// BENCH_baseline.json records both wall clocks; on a multi-core machine
// the parallel engine's advantage approaches min(GOMAXPROCS, ~3x) for the
// 9-benchmark x 3-model grid (the TPC-C column dominates the critical
// path). On a single-core machine they coincide.

func benchTable1Corpus(b *testing.B, parallelism int) {
	all := benchmarks.All()
	for _, bench := range all {
		if _, err := bench.Program(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table1(all, exp.WithParallelism(parallelism)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Corpus_Sequential(b *testing.B) { benchTable1Corpus(b, 1) }
func BenchmarkTable1Corpus_Parallel(b *testing.B)   { benchTable1Corpus(b, 0) }

// --- Table 1's consistency-model columns (EC vs CC vs RR detection) ---

func benchDetect(b *testing.B, model anomaly.Model) {
	prog, err := benchmarks.SmallBank.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := anomaly.Detect(prog, model); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetect_EC(b *testing.B) { benchDetect(b, anomaly.EC) }
func BenchmarkDetect_CC(b *testing.B) { benchDetect(b, anomaly.CC) }
func BenchmarkDetect_RR(b *testing.B) { benchDetect(b, anomaly.RR) }
func BenchmarkDetect_SC(b *testing.B) { benchDetect(b, anomaly.SC) }

// --- Figures 12-15: one simulated performance point per panel ---

func benchPerfPoint(b *testing.B, benchName string, topo cluster.Topology) {
	bench := benchmarks.ByName(benchName)
	res, err := exp.Perf(exp.PerfConfig{
		Benchmark:    bench,
		Topology:     topo,
		ClientCounts: []int{50},
		Duration:     2 * time.Second,
		Warmup:       200 * time.Millisecond,
		Scale:        benchmarks.Scale{Records: 50},
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Perf(exp.PerfConfig{
			Benchmark:    bench,
			Topology:     topo,
			ClientCounts: []int{50},
			Duration:     2 * time.Second,
			Warmup:       200 * time.Millisecond,
			Scale:        benchmarks.Scale{Records: 50},
			Seed:         int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12a_SmallBank_US(b *testing.B) { benchPerfPoint(b, "SmallBank", cluster.USCluster) }
func BenchmarkFig12b_SEATS_US(b *testing.B)     { benchPerfPoint(b, "SEATS", cluster.USCluster) }
func BenchmarkFig12c_TPCC_US(b *testing.B)      { benchPerfPoint(b, "TPC-C", cluster.USCluster) }

func BenchmarkFig13_SmallBank_VA(b *testing.B) { benchPerfPoint(b, "SmallBank", cluster.VACluster) }
func BenchmarkFig13_SmallBank_Global(b *testing.B) {
	benchPerfPoint(b, "SmallBank", cluster.GlobalCluster)
}
func BenchmarkFig14_SEATS_VA(b *testing.B)     { benchPerfPoint(b, "SEATS", cluster.VACluster) }
func BenchmarkFig14_SEATS_Global(b *testing.B) { benchPerfPoint(b, "SEATS", cluster.GlobalCluster) }
func BenchmarkFig15_TPCC_VA(b *testing.B)      { benchPerfPoint(b, "TPC-C", cluster.VACluster) }
func BenchmarkFig15_TPCC_Global(b *testing.B)  { benchPerfPoint(b, "TPC-C", cluster.GlobalCluster) }

// --- Figure 16: one round of random refactoring vs Atropos ---

func BenchmarkFig16_SmallBank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig16(benchmarks.SmallBank, 1, 10, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Appendix A.2: SmallBank invariants ---

func BenchmarkInvariants_SmallBank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Invariants(10, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Public API end to end (quickstart path) ---

func BenchmarkPublicAPIRepair(b *testing.B) {
	prog, err := benchmarks.Courseware.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atropos.Repair(context.Background(), prog, atropos.EC); err != nil {
			b.Fatal(err)
		}
	}
}
