// Package atropos is the public API of Atropos-Go, a reproduction of
// "Repairing Serializability Bugs in Distributed Database Programs via
// Automated Schema Refactoring" (PLDI 2021).
//
// Atropos takes a database program written in a small SQL-like DSL,
// statically detects serializability anomalies that weak consistency
// (eventual consistency, causal consistency, repeatable read) would admit,
// and repairs them by refactoring the database schema — merging commands
// after relocating fields between tables, and turning read-modify-write
// counters into append-only logging tables — rather than by strengthening
// consistency levels.
//
// Typical use:
//
//	prog, err := atropos.Parse(src)
//	report, err := atropos.Analyze(ctx, prog, atropos.EC)
//	result, err := atropos.Repair(ctx, prog, atropos.EC)
//	fmt.Println(atropos.Format(result.Program))
//
// Every analysis entry point takes a context: cancelling it (or letting a
// deadline expire) aborts the underlying SAT solves mid-flight. Behavior is
// tuned with functional options (WithCertify, WithDetectParallelism, ...).
// For serving many callers from one process, NewEngine wraps the pipeline
// in a long-lived engine with a bounded worker pool and per-client
// incremental detection sessions — the daemon cmd/atroposd exposes that
// engine over HTTP (DESIGN.md §12).
//
// The package also exposes the evaluation substrate: the nine benchmark
// programs of the paper's Table 1, the discrete-event geo-replicated
// cluster simulator behind Figs. 12-15, and the experiment drivers that
// regenerate every table and figure (see EXPERIMENTS.md).
package atropos

import (
	"context"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/cluster"
	"atropos/internal/core"
	"atropos/internal/engine"
	"atropos/internal/exp"
	"atropos/internal/refactor"
	"atropos/internal/repair"
	"atropos/internal/replay"
)

// Program is a parsed, semantically checked database program.
type Program = ast.Program

// Model is the consistency model anomalies are detected under.
type Model = anomaly.Model

// Consistency models (Table 1's columns).
const (
	EC = anomaly.EC // eventual consistency
	CC = anomaly.CC // causal consistency
	RR = anomaly.RR // repeatable read
	SC = anomaly.SC // serializability
)

// AnomalyReport is the static detector's output.
type AnomalyReport = anomaly.Report

// AccessPair is one anomalous access pair χ = (c1, f̄1, c2, f̄2).
type AccessPair = anomaly.AccessPair

// RepairResult carries the refactored program, the introduced value
// correspondences, and the before/after anomaly sets.
type RepairResult = repair.Result

// ValueCorr is a value correspondence (R, R′, f, f′, θ, α).
type ValueCorr = refactor.ValueCorr

// ParseModel parses a consistency-model name ("EC", "cc", ...).
func ParseModel(s string) (Model, error) { return anomaly.ParseModel(s) }

// Parse parses and semantically checks DSL source.
func Parse(src string) (*Program, error) { return core.LoadProgram(src) }

// Format renders a program back to DSL concrete syntax.
func Format(p *Program) string { return ast.Format(p) }

// Analyze runs the static anomaly oracle under the given model. Cancelling
// the context aborts the SAT solves mid-flight and returns its error.
func Analyze(ctx context.Context, p *Program, m Model) (*AnomalyReport, error) {
	return anomaly.DetectContext(ctx, p, m)
}

// DetectSession is the incremental anomaly oracle: it fingerprints
// transactions and memoizes solved SAT queries, so detecting across a
// sequence of related programs (the repair pipeline, an editing loop)
// only re-solves what actually changed. Reports are identical to Analyze.
type DetectSession = anomaly.DetectSession

// DetectStats aggregates a session's SAT-query counters and cache hits.
type DetectStats = anomaly.SessionStats

// NewDetectSession creates an incremental detection session for one model.
func NewDetectSession(m Model) *DetectSession { return anomaly.NewSession(m) }

// Certificate is a witness-replay certificate: per anomalous pair, whether
// the detector's satisfying SAT model lowered into a directed simulator
// run that reproduced the claimed dependency cycle (DESIGN.md §11).
type Certificate = replay.Certificate

// RepairCertificate extends a Certificate with the repair's negative
// controls: serial replays of the original program and projected replays
// of the repaired one, both of which must show zero violations.
type RepairCertificate = replay.RepairCertificate

// Certify is Analyze with witness recording plus replay: every reported
// pair is certified by executing its witness schedule in the cluster
// simulator. The report is identical to Analyze's.
func Certify(ctx context.Context, p *Program, m Model) (*Certificate, *AnomalyReport, error) {
	return replay.CertifyModelContext(ctx, p, m)
}

// RepairOption configures one Repair or Engine call. The zero configuration
// (no options) runs the incremental detection engine without certification —
// the same defaults the old Repair entry point had.
type RepairOption = repair.Option

// WithIncrementalDetect toggles the cached incremental detection session
// inside the pipeline (on by default). Results are identical either way.
func WithIncrementalDetect(on bool) RepairOption { return repair.Incremental(on) }

// WithDetectParallelism bounds the worker goroutines of the detection
// passes. Zero — the default — selects min(GOMAXPROCS, 4): multi-core
// detection is the fast path. Pass an explicit 1 for strictly sequential
// detection (the pre-flip behavior, and the only setting whose
// Solved/Replayed cache counters are deterministic; reported anomalies are
// identical at every setting).
func WithDetectParallelism(n int) RepairOption { return repair.Parallelism(n) }

// WithPortfolio races k diversified SAT-solver replicas per detection
// query, first definitive verdict wins. Which pairs are anomalous is
// unchanged; the reported fields and witness schedules come from whichever
// replica won and are not byte-reproducible across runs. Off by default.
func WithPortfolio(k int) RepairOption { return repair.Portfolio(k) }

// WithCertify replays every initial anomaly as an executable certificate
// with negative controls (RepairResult.Certificate).
func WithCertify(on bool) RepairOption { return repair.Certify(on) }

// WithClient tags the call with a client identity. Engine methods use it to
// reuse that client's cached detection session across requests; the plain
// entry points ignore it.
func WithClient(id string) RepairOption { return repair.Client(id) }

// WithSession injects an existing detection session (created with
// NewDetectSession for the same model) so its caches carry over this call.
func WithSession(s *DetectSession) RepairOption { return repair.Session(s) }

// Repair runs the full Atropos pipeline (Fig. 4): detect, preprocess,
// refactor, post-process. Cancelling the context aborts the pipeline
// mid-solve. RepairResult.Elapsed records the total wall time (Table 1's
// Time column).
func Repair(ctx context.Context, p *Program, m Model, opts ...RepairOption) (*RepairResult, error) {
	return repair.Run(ctx, p, m, opts...)
}

// RepairOptions is the options struct behind the functional options.
//
// Deprecated: pass RepairOption values to Repair instead.
type RepairOptions = repair.Options

// AnalyzeCertified is Certify without cancellation.
//
// Deprecated: use Certify with a context.
func AnalyzeCertified(p *Program, m Model) (*Certificate, *AnomalyReport, error) {
	return replay.CertifyModel(p, m)
}

// RepairWithOptions is Repair with an explicit options struct and no
// cancellation.
//
// Deprecated: use Repair with a context and functional options.
func RepairWithOptions(p *Program, m Model, o RepairOptions) (*RepairResult, error) {
	return repair.RepairWith(p, m, o)
}

// RepairTimed is Repair plus the total wall time.
//
// Deprecated: use Repair; the wall time is RepairResult.Elapsed.
func RepairTimed(p *Program, m Model) (*RepairResult, time.Duration, error) {
	return RepairTimedWith(p, m, RepairOptions{Incremental: true})
}

// RepairTimedWith is RepairWithOptions plus the total wall time.
//
// Deprecated: use Repair; the wall time is RepairResult.Elapsed.
func RepairTimedWith(p *Program, m Model, o RepairOptions) (*RepairResult, time.Duration, error) {
	res, err := core.RunWith(p, m, o)
	if err != nil {
		return nil, 0, err
	}
	return res.Repair, res.Elapsed, nil
}

// Engine is a long-lived repair service: a bounded worker pool with
// queue-depth backpressure (ErrOverloaded), an LRU cache of per-client
// detection sessions, and pooled solver arenas shared across requests. One
// Engine serves concurrent callers; cmd/atroposd puts it behind HTTP. See
// DESIGN.md §12 for the lifecycle contract.
type Engine = engine.Engine

// EngineConfig sizes an Engine (workers, queue depth, session cache).
type EngineConfig = engine.Config

// EngineStats is an Engine's observable counters.
type EngineStats = engine.Stats

// ErrOverloaded is returned by Engine methods when every worker is busy and
// the admission queue is full; callers should back off and retry.
var ErrOverloaded = engine.ErrOverloaded

// NewEngine creates an Engine. The zero config defaults to GOMAXPROCS
// workers, a 4x-workers queue, and 64 cached sessions.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// Benchmark is one of the paper's nine evaluation programs with its
// workload mix and population generator.
type Benchmark = benchmarks.Benchmark

// Scale sizes a benchmark's population and key skew.
type Scale = benchmarks.Scale

// TableRow is one initial record of a benchmark population.
type TableRow = benchmarks.TableRow

// Benchmarks returns the evaluation corpus in Table 1 order.
func Benchmarks() []*Benchmark { return benchmarks.All() }

// BenchmarkByName looks up a benchmark ("SmallBank", "TPC-C", ...).
func BenchmarkByName(name string) *Benchmark { return benchmarks.ByName(name) }

// Cluster simulation (the paper's deployment substrate, Figs. 12-15).
type (
	// ClusterConfig describes one simulated deployment run.
	ClusterConfig = cluster.Config
	// ClusterResult is its measurement.
	ClusterResult = cluster.Result
	// Topology is the 3-replica network geometry.
	Topology = cluster.Topology
	// ClusterMode selects a deployment's consistency (EC / SC / AT-SC).
	ClusterMode = cluster.Mode
)

// Deployment modes.
const (
	ModeEC   = cluster.ModeEC
	ModeSC   = cluster.ModeSC
	ModeATSC = cluster.ModeATSC
)

// The paper's three clusters.
var (
	VACluster     = cluster.VACluster
	USCluster     = cluster.USCluster
	GlobalCluster = cluster.GlobalCluster
)

// Simulate runs one deployment configuration.
func Simulate(cfg ClusterConfig) (ClusterResult, error) { return cluster.Run(cfg) }

// Experiment drivers (one per table/figure; see DESIGN.md §5).
type (
	// PerfConfig drives one Fig. 12-15 panel; its Parallelism field bounds
	// how many deployment simulations run concurrently (0 = GOMAXPROCS).
	PerfConfig = exp.PerfConfig
	// PerfResult holds its four measured curves.
	PerfResult = exp.PerfResult
	// Table1Row is one row of Table 1.
	Table1Row = exp.Table1Row
	// Option configures an experiment driver (see WithParallelism).
	Option = exp.Option
)

// WithParallelism bounds the worker goroutines an experiment driver may
// use; n <= 0 selects GOMAXPROCS (the default).
func WithParallelism(n int) Option { return exp.WithParallelism(n) }

// WithIncremental toggles the incremental (cached) anomaly-detection
// engine inside the experiment drivers' repair pipelines; on by default.
// Results are identical either way.
func WithIncremental(on bool) Option { return exp.WithIncremental(on) }

// Table1 regenerates Table 1 over the given benchmarks, fanning the
// benchmark × consistency-model grid out on a bounded worker pool.
func Table1(benches []*Benchmark, opts ...Option) ([]Table1Row, error) {
	return exp.Table1(benches, opts...)
}

// FormatTable1 renders Table 1 rows.
func FormatTable1(rows []Table1Row) string { return exp.FormatTable1(rows) }

// Perf runs one performance panel (a Fig. 12-15 subfigure).
func Perf(cfg PerfConfig) (*PerfResult, error) { return exp.Perf(cfg) }

// MigrateRows materializes a refactored program's initial state from the
// original program's rows through the repair's value correspondences.
func MigrateRows(orig, refactored *Program, corrs []ValueCorr, rows []benchmarks.TableRow) ([]benchmarks.TableRow, error) {
	return exp.MigrateRows(orig, refactored, corrs, rows)
}
